"""The asyncio job scheduler behind the sweep service.

One :class:`JobScheduler` owns four things:

* an **inflight map** ``job_key -> _Entry``: every submission of a job
  already queued or running *coalesces* onto the first one's future —
  N clients sweeping overlapping grids cost one execution per distinct
  job, not N;
* a **bounded backlog**: once ``max_backlog`` distinct jobs are pending,
  further submissions raise :class:`QueueFullError` (the HTTP layer
  maps it to 429) instead of growing an unbounded queue;
* a **worker fleet**: asyncio tasks that pull entries off the backlog
  and run them on a shared :class:`~concurrent.futures.
  ProcessPoolExecutor` seeded with the driver's code fingerprint via
  :func:`repro.harness.parallel._pool_init` — exactly like the harness
  pool path, so service results land under the same cache keys;
* the **failure policy**: per-attempt timeout, retry budget, and
  exponential backoff from :class:`~repro.harness.parallel.
  HarnessPolicy`, with the same charge semantics as
  ``run_jobs(workers=N)`` — a crashed or wedged pool is killed and
  respawned, the victim charged one retry, innocent pool-mates requeued
  for free.

Jobs that :func:`~repro.service.slices.sliceable` approves run in
bounded cycle slices with a checkpoint between slices.  That checkpoint
is what makes preemption cheap everywhere it appears:

* a **timeout or pool crash** mid-job retries *from the last completed
  slice*, not from cycle zero;
* :meth:`JobScheduler.drain_workers` retires fleet members gracefully —
  each finishes its current slice, requeues the job *with its
  checkpoint*, and exits, so the job resumes on another worker without
  losing cycles (checkpoint migration);
* :meth:`JobScheduler.begin_drain` stops intake (submissions raise
  :class:`SchedulerDraining`) while the backlog runs dry for a clean
  shutdown.

Everything is accounted in a :class:`~repro.harness.parallel.
SweepStats` (plus the store's own counters), surfaced through
:meth:`JobScheduler.progress` for the streaming endpoint.
"""

from __future__ import annotations

import asyncio
import functools
import logging
from dataclasses import dataclass, field

from ..harness.jobs import Job, run_job
from ..harness.parallel import (
    HarnessPolicy,
    SweepError,
    SweepStats,
    _kill_pool,
    _pool_init,
    code_fingerprint,
    job_key,
)
from .slices import run_job_slice, sliceable
from .store import ContentStore

_LOG = logging.getLogger("repro.service.scheduler")

#: default cycle budget per slice; big enough that slicing overhead
#: (machine rebuild + snapshot) stays negligible, small enough that
#: drain and timeout react within one slice
DEFAULT_SLICE_CYCLES = 100_000


class QueueFullError(RuntimeError):
    """The scheduler backlog is at capacity; resubmit later (HTTP 429)."""


class SchedulerDraining(RuntimeError):
    """The scheduler is draining and accepts no new jobs (HTTP 503)."""


@dataclass
class _Entry:
    """One distinct job in flight; every coalesced submission shares
    :attr:`future`."""

    key: str
    job: Job
    future: asyncio.Future
    attempts: int = 0
    waiters: int = 1          #: submissions coalesced onto this entry
    state: dict | None = None  #: latest slice checkpoint (migratable)
    cycle: int = 0            #: simulated cycles completed so far
    running: bool = False     #: picked up by a worker (vs backlogged)


@dataclass
class JobScheduler:
    """Coalescing, backpressured scheduler over a process-pool fleet."""

    store: ContentStore
    workers: int = 2
    pool_workers: int | None = None  #: pool size; defaults to ``workers``
    max_backlog: int = 256
    policy: HarnessPolicy = field(default_factory=HarnessPolicy)
    slice_cycles: int = DEFAULT_SLICE_CYCLES
    stats: SweepStats = field(default_factory=SweepStats)

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("need at least one worker")
        if self.max_backlog < 1:
            raise ValueError("max_backlog must be >= 1")
        if self.slice_cycles < 1:
            raise ValueError("slice_cycles must be >= 1")
        self._queue: asyncio.Queue[_Entry] = asyncio.Queue()
        self._inflight: dict[str, _Entry] = {}
        self._failed: dict[str, str] = {}  #: key -> terminal error text
        self._tasks: list[asyncio.Task] = []
        self._pool = None
        self._pool_gen = 0
        self._draining = False
        self._drain_requests = 0
        self._idle = asyncio.Event()
        self._idle.set()

    # -- lifecycle ---------------------------------------------------------

    def _new_pool(self):
        from concurrent.futures import ProcessPoolExecutor

        return ProcessPoolExecutor(
            max_workers=self.pool_workers or self.workers,
            initializer=_pool_init,
            initargs=(self.policy.inject, code_fingerprint()),
        )

    async def start(self) -> None:
        if self._tasks:
            raise RuntimeError("scheduler already started")
        self._pool = self._new_pool()
        for n in range(self.workers):
            self._tasks.append(
                asyncio.create_task(self._worker(n), name=f"worker-{n}")
            )

    async def stop(self) -> None:
        """Hard stop: cancel the fleet and kill the pool.  Unfinished
        entries keep their checkpoints only in memory — callers wanting
        a graceful exit use :meth:`begin_drain` + :meth:`drained`
        first."""
        for task in self._tasks:
            task.cancel()
        for task in self._tasks:
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        self._tasks.clear()
        if self._pool is not None:
            _kill_pool(self._pool)
            self._pool = None

    # -- intake ------------------------------------------------------------

    def submit(self, job: Job) -> tuple[str, asyncio.Future, str]:
        """Register one job; returns ``(job_key, future, status)`` where
        status is ``"cached"`` (already in the store), ``"coalesced"``
        (identical job already in flight) or ``"queued"``.

        Raises :class:`SchedulerDraining` during drain and
        :class:`QueueFullError` when the backlog is full; the caller
        decides per-job what a partial rejection means.
        """
        key = job_key(job)
        result = self.store.get(key)
        if result is not None:
            self.stats.hits += 1
            future = asyncio.get_running_loop().create_future()
            future.set_result(result)
            return key, future, "cached"
        entry = self._inflight.get(key)
        if entry is not None:
            entry.waiters += 1
            self.stats.coalesced += 1
            return key, entry.future, "coalesced"
        if self._draining:
            raise SchedulerDraining("scheduler is draining")
        if len(self._inflight) >= self.max_backlog:
            self.stats.rejected += 1
            raise QueueFullError(
                f"backlog full ({self.max_backlog} jobs in flight)"
            )
        entry = _Entry(
            key, job, asyncio.get_running_loop().create_future()
        )
        self._failed.pop(key, None)  # a resubmission retries the job
        self._inflight[key] = entry
        self._idle.clear()
        self._queue.put_nowait(entry)
        return key, entry.future, "queued"

    def future_for(self, key: str) -> asyncio.Future | None:
        """The shared future of an in-flight job key (long-poll waits
        on it), or ``None``."""
        entry = self._inflight.get(key)
        return entry.future if entry is not None else None

    def lookup(self, key: str) -> dict | None:
        """Status of one job key: finished (``{"status": "done",
        "digest": ...}``), in flight (with progress), or ``None``."""
        digest = self.store.digest_for(key)
        if digest is not None:
            return {"status": "done", "digest": digest}
        entry = self._inflight.get(key)
        if entry is None:
            error = self._failed.get(key)
            if error is not None:
                return {"status": "failed", "error": error}
            return None
        return {
            "status": "running" if entry.running else "queued",
            "attempts": entry.attempts,
            "waiters": entry.waiters,
            "cycle": entry.cycle,
        }

    # -- drain -------------------------------------------------------------

    def begin_drain(self) -> None:
        """Stop accepting new jobs; in-flight work runs to completion."""
        self._draining = True

    async def drained(self) -> None:
        """Wait until every accepted job has resolved."""
        await self._idle.wait()

    def drain_workers(self, count: int = 1) -> int:
        """Retire up to ``count`` fleet workers at their next slice
        boundary; their in-progress jobs are requeued *with their
        checkpoints* and resume on the remaining workers.  At least one
        worker always survives.  Returns the number actually retired."""
        alive = sum(1 for t in self._tasks if not t.done())
        granted = max(0, min(count, alive - 1))
        self._drain_requests += granted
        return granted

    def _take_drain(self) -> bool:
        if self._drain_requests > 0:
            self._drain_requests -= 1
            return True
        return False

    # -- execution ---------------------------------------------------------

    async def _worker(self, n: int) -> None:
        while True:
            entry = await self._queue.get()
            if entry.future.done():  # pragma: no cover - cancelled waiter
                self._finish(entry)
                continue
            entry.running = True
            try:
                migrated = await self._attempt(entry)
            except asyncio.CancelledError:
                entry.running = False
                self._queue.put_nowait(entry)
                raise
            entry.running = False
            if migrated:
                # this worker was asked to drain: hand the checkpointed
                # entry back and leave the fleet
                self._queue.put_nowait(entry)
                _LOG.info(
                    "worker %d drained; requeued %s at cycle %d",
                    n, entry.key[:12], entry.cycle,
                )
                return
            if self._take_drain():
                # atomic jobs cannot be preempted; drain between jobs
                _LOG.info("worker %d drained", n)
                return

    async def _attempt(self, entry: _Entry) -> bool:
        """Run one attempt of ``entry`` to completion, failure, or (for
        a draining worker) a slice boundary.  Returns True when the
        entry was preempted for migration."""
        from concurrent.futures.process import BrokenProcessPool

        loop = asyncio.get_running_loop()
        timeout = self.policy.timeout
        deadline = (
            loop.time() + timeout if timeout is not None else None
        )
        sliced = sliceable(entry.job)
        gen = self._pool_gen
        try:
            while True:
                budget = None
                if deadline is not None:
                    budget = deadline - loop.time()
                    if budget <= 0:
                        raise TimeoutError
                if sliced:
                    call = functools.partial(
                        run_job_slice, entry.job, entry.state,
                        self.slice_cycles,
                    )
                else:
                    call = functools.partial(run_job, entry.job)
                out = await asyncio.wait_for(
                    loop.run_in_executor(self._pool, call), budget
                )
                if not sliced:
                    self._land(entry, out)
                    return False
                if out["done"]:
                    self._land(entry, out["result"])
                    return False
                entry.state = out["state"]
                entry.cycle = out["cycle"]
                if self._take_drain():
                    return True
        except (asyncio.CancelledError, KeyboardInterrupt):
            raise
        except BrokenProcessPool as exc:
            # if another worker already respawned the pool since this
            # attempt started, this job is collateral of that crash:
            # requeue it for free, exactly like the harness pool path
            if self._pool_gen != gen:
                self._requeue(entry, 0.0)
            else:
                self._respawn(gen)
                self._charge(entry, "lost to a crashed worker", exc)
        except (TimeoutError, asyncio.TimeoutError):
            # a wedged pool process cannot be cancelled; recycle the
            # pool (collateral jobs requeue themselves via the branch
            # above) and charge only this job
            if self._pool_gen == gen:
                self._respawn(gen)
            self._charge(
                entry, f"timed out after {timeout:g}s", None
            )
        except Exception as exc:
            self._charge(entry, f"raised {type(exc).__name__}", exc)
        return False

    def _respawn(self, gen_seen: int) -> None:
        """Kill and rebuild the pool (once per crash: callers race on
        the generation counter, the first wins, the rest see the bump
        and treat their failure as collateral)."""
        if self._pool_gen != gen_seen:  # pragma: no cover - lost race
            return
        self._pool_gen += 1
        _kill_pool(self._pool)
        self._pool = self._new_pool()
        self.stats.respawns += 1
        _LOG.warning("process pool respawned (generation %d)",
                     self._pool_gen)

    def _land(self, entry: _Entry, result: dict) -> None:
        self.store.put(entry.key, result)
        self.stats.executed += 1
        self.stats.flushed += 1
        if not entry.future.done():
            entry.future.set_result(result)
        self._finish(entry)

    def _charge(self, entry: _Entry, why: str,
                cause: BaseException | None) -> None:
        """One failed execution; fail the future once the retry budget
        is gone, else back off and requeue.  A sliced entry keeps its
        checkpoint, so the retry resumes from the last completed slice."""
        from concurrent.futures.process import BrokenProcessPool

        self.stats.record_failure(
            type(cause).__name__ if cause is not None else "Timeout"
        )
        entry.attempts += 1
        if entry.attempts > self.policy.retries:
            if cause is not None and not isinstance(
                cause, (BrokenProcessPool, TimeoutError)
            ):
                error: BaseException = cause
            else:
                error = SweepError(
                    f"job {entry.key[:12]} failed {entry.attempts} "
                    f"time(s) ({why}) with retries={self.policy.retries}"
                )
                error.__cause__ = cause
            self._failed[entry.key] = f"{type(error).__name__}: {error}"
            if not entry.future.done():
                entry.future.set_exception(error)
                # HTTP waiters poll lookup() rather than awaiting, so
                # mark the exception retrieved to keep asyncio from
                # logging "exception was never retrieved"
                entry.future.exception()
            self._finish(entry)
            return
        self.stats.retried += 1
        _LOG.warning(
            "job %s %s; retry %d/%d", entry.key[:12], why,
            entry.attempts, self.policy.retries,
        )
        delay = 0.0
        if self.policy.backoff:
            delay = self.policy.backoff * (2 ** (entry.attempts - 1))
        self._requeue(entry, delay)

    def _requeue(self, entry: _Entry, delay: float) -> None:
        if delay > 0:
            asyncio.get_running_loop().call_later(
                delay, self._queue.put_nowait, entry
            )
        else:
            self._queue.put_nowait(entry)

    def _finish(self, entry: _Entry) -> None:
        self._inflight.pop(entry.key, None)
        if not self._inflight:
            self._idle.set()

    # -- observability -----------------------------------------------------

    def worker_pids(self) -> list[int]:
        """PIDs of the live pool processes (the smoke test kills one)."""
        if self._pool is None:
            return []
        return sorted(getattr(self._pool, "_processes", None) or {})

    def progress(self) -> dict:
        """One JSON-clean snapshot for ``/v1/stats`` and the streaming
        progress endpoint."""
        running = sum(1 for e in self._inflight.values() if e.running)
        return {
            "sweep": {
                "hits": self.stats.hits,
                "executed": self.stats.executed,
                "flushed": self.stats.flushed,
                "retried": self.stats.retried,
                "respawns": self.stats.respawns,
                "coalesced": self.stats.coalesced,
                "rejected": self.stats.rejected,
                "failures": dict(self.stats.failures),
            },
            "store": {
                **self.store.stats.to_dict(),
                "results": self.store.result_count(),
                "blobs": self.store.blob_count(),
            },
            "backlog": len(self._inflight) - running,
            "running": running,
            "workers": sum(1 for t in self._tasks if not t.done()),
            "pool_pids": self.worker_pids(),
            "draining": self._draining,
        }
