"""Minimal asyncio HTTP/1.1 front end over :class:`~repro.service.
scheduler.JobScheduler` — stdlib only, keep-alive, chunked streaming.

Routes (all JSON bodies):

``GET /v1/healthz``
    ``{"ok": true}`` — liveness probe.
``POST /v1/jobs``
    Body ``{"jobs": [<spec>, ...]}`` (see :mod:`~repro.service.
    protocol`).  Every spec gets a per-job status — ``cached``,
    ``coalesced``, ``queued``, ``rejected`` (backlog full) or
    ``draining`` — plus its server-side ``key``.  The response code is
    429 when anything was rejected for backpressure, 503 when anything
    hit the drain gate, 200 otherwise; clients retry only the jobs
    whose status says so.
``GET /v1/jobs/<key>``
    Job status; ``?wait=<seconds>`` long-polls until the job resolves
    (capped) and inlines ``result`` when done.
``GET /v1/blobs/<digest>``
    One stored result blob, integrity-checked by the store.
``GET /v1/stats``
    One :meth:`~repro.service.scheduler.JobScheduler.progress`
    snapshot.
``GET /v1/progress``
    Chunked ``application/x-ndjson`` stream of progress snapshots every
    ``?interval=`` seconds (default 0.5) until the client disconnects
    or the server shuts down — the service-side face of
    :class:`~repro.harness.parallel.SweepStats`.
``POST /v1/drain``
    Body ``{"workers": k}`` retires ``k`` fleet workers with checkpoint
    migration; an empty body (or ``{"intake": false}``) gates intake so
    the backlog runs dry.
``POST /v1/shutdown``
    Graceful exit: gate intake, wait for in-flight jobs, stop.
"""

from __future__ import annotations

import asyncio
import json
import logging
from urllib.parse import parse_qs, urlsplit

from ..harness.parallel import HarnessPolicy
from .protocol import ProtocolError, jobs_from_payload
from .scheduler import JobScheduler, QueueFullError, SchedulerDraining
from .store import ContentStore

_LOG = logging.getLogger("repro.service.server")

#: cap on ?wait= long-polls, so a dead client cannot pin a handler
MAX_WAIT = 300.0


class _BadRequest(Exception):
    """Maps to a 400 with the message as the error body."""


class SweepServer:
    """One listening socket, one scheduler, stdlib all the way down."""

    def __init__(
        self,
        store: ContentStore,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 2,
        pool_workers: int | None = None,
        max_backlog: int = 256,
        policy: HarnessPolicy | None = None,
        slice_cycles: int | None = None,
    ) -> None:
        kwargs = dict(
            store=store,
            workers=workers,
            pool_workers=pool_workers,
            max_backlog=max_backlog,
            policy=policy or HarnessPolicy(),
        )
        if slice_cycles is not None:
            kwargs["slice_cycles"] = slice_cycles
        self.scheduler = JobScheduler(**kwargs)
        self.host = host
        self.port = port
        self._server: asyncio.AbstractServer | None = None
        self._shutdown = asyncio.Event()

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> tuple[str, int]:
        """Bind, start the fleet, and return ``(host, port)`` — port 0
        resolves to the kernel's pick, which is what tests print."""
        await self.scheduler.start()
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        sock = self._server.sockets[0]
        self.host, self.port = sock.getsockname()[:2]
        _LOG.info("serving on http://%s:%d", self.host, self.port)
        return self.host, self.port

    async def serve_forever(self) -> None:
        """Run until a ``POST /v1/shutdown`` completes its drain."""
        if self._server is None:
            await self.start()
        await self._shutdown.wait()
        self.scheduler.begin_drain()
        await self.scheduler.drained()
        await self.stop()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.scheduler.stop()

    # -- http plumbing -----------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                method, path, query, headers, body = request
                try:
                    done = await self._dispatch(
                        writer, method, path, query, body
                    )
                except _BadRequest as exc:
                    self._respond(writer, 400, {"error": str(exc)})
                    done = False
                except ProtocolError as exc:
                    self._respond(writer, 400, {"error": str(exc)})
                    done = False
                await writer.drain()
                if done or headers.get("connection") == "close":
                    break
        except (
            ConnectionResetError,
            BrokenPipeError,
            asyncio.IncompleteReadError,
        ):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _read_request(self, reader: asyncio.StreamReader):
        line = await reader.readline()
        if not line or line in (b"\r\n", b"\n"):
            return None
        parts = line.decode("latin-1").split()
        if len(parts) < 2:
            return None
        method, target = parts[0].upper(), parts[1]
        headers: dict[str, str] = {}
        while True:
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            name, _, value = raw.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        body = await reader.readexactly(length) if length else b""
        split = urlsplit(target)
        query = {
            k: v[-1] for k, v in parse_qs(split.query).items()
        }
        return method, split.path.rstrip("/"), query, headers, body

    @staticmethod
    def _respond(
        writer: asyncio.StreamWriter,
        status: int,
        payload: dict,
    ) -> None:
        body = json.dumps(payload).encode()
        reason = {
            200: "OK", 202: "Accepted", 400: "Bad Request",
            404: "Not Found", 405: "Method Not Allowed",
            429: "Too Many Requests", 503: "Service Unavailable",
        }.get(status, "OK")
        writer.write(
            (
                f"HTTP/1.1 {status} {reason}\r\n"
                "Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                "\r\n"
            ).encode()
            + body
        )

    # -- routing -----------------------------------------------------------

    async def _dispatch(
        self,
        writer: asyncio.StreamWriter,
        method: str,
        path: str,
        query: dict[str, str],
        body: bytes,
    ) -> bool:
        """Handle one request; returns True when the connection (or the
        whole server) should wind down afterwards."""
        if path == "/v1/healthz" and method == "GET":
            self._respond(writer, 200, {"ok": True})
            return False
        if path == "/v1/jobs" and method == "POST":
            self._handle_submit(writer, body)
            return False
        if path.startswith("/v1/jobs/") and method == "GET":
            await self._handle_job(writer, path[len("/v1/jobs/"):], query)
            return False
        if path.startswith("/v1/blobs/") and method == "GET":
            digest = path[len("/v1/blobs/"):]
            blob = self.scheduler.store.get_blob(digest)
            if blob is None:
                self._respond(writer, 404, {"error": "unknown digest"})
            else:
                self._respond(writer, 200, blob)
            return False
        if path == "/v1/stats" and method == "GET":
            self._respond(writer, 200, self.scheduler.progress())
            return False
        if path == "/v1/progress" and method == "GET":
            await self._handle_progress(writer, query)
            return True  # the stream consumed the connection
        if path == "/v1/drain" and method == "POST":
            self._handle_drain(writer, body)
            return False
        if path == "/v1/shutdown" and method == "POST":
            self._respond(writer, 202, {"draining": True})
            self._shutdown.set()
            return True
        if path.startswith("/v1/"):
            self._respond(writer, 404, {"error": f"no route {path}"})
            return False
        self._respond(writer, 404, {"error": "unknown path"})
        return False

    def _handle_submit(
        self, writer: asyncio.StreamWriter, body: bytes
    ) -> None:
        try:
            payload = json.loads(body or b"{}")
        except json.JSONDecodeError as exc:
            raise _BadRequest(f"request body is not JSON: {exc}")
        jobs = jobs_from_payload(payload)
        statuses = []
        for job in jobs:
            try:
                key, _future, status = self.scheduler.submit(job)
                statuses.append({"key": key, "status": status})
            except QueueFullError:
                statuses.append({"status": "rejected"})
            except SchedulerDraining:
                statuses.append({"status": "draining"})
        code = 200
        if any(s["status"] == "rejected" for s in statuses):
            code = 429
        elif any(s["status"] == "draining" for s in statuses):
            code = 503
        self._respond(writer, code, {"jobs": statuses})

    async def _handle_job(
        self,
        writer: asyncio.StreamWriter,
        key: str,
        query: dict[str, str],
    ) -> None:
        wait = min(float(query.get("wait", 0) or 0), MAX_WAIT)
        if wait > 0:
            future = self.scheduler.future_for(key)
            if future is not None:
                try:
                    await asyncio.wait_for(
                        asyncio.shield(future), wait
                    )
                except (asyncio.TimeoutError, Exception):
                    # a failed job still reports through lookup();
                    # shielded so one impatient poller cannot cancel
                    # the shared execution
                    pass
        status = self.scheduler.lookup(key)
        if status is None:
            self._respond(writer, 404, {"error": "unknown job key"})
            return
        if status["status"] == "done":
            result = self.scheduler.store.get_blob(status["digest"])
            if result is not None:
                status = {**status, "result": result}
        self._respond(writer, 200, status)

    async def _handle_progress(
        self, writer: asyncio.StreamWriter, query: dict[str, str]
    ) -> None:
        try:
            interval = max(0.05, float(query.get("interval", 0.5)))
        except ValueError:
            raise _BadRequest("interval must be a number")
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/x-ndjson\r\n"
            b"Transfer-Encoding: chunked\r\n"
            b"\r\n"
        )

        def chunk(payload: dict) -> bytes:
            line = json.dumps(payload).encode() + b"\n"
            return f"{len(line):x}\r\n".encode() + line + b"\r\n"

        try:
            while True:
                writer.write(chunk(self.scheduler.progress()))
                await writer.drain()
                if self._shutdown.is_set():
                    break
                try:
                    await asyncio.wait_for(
                        self._shutdown.wait(), interval
                    )
                    writer.write(chunk(self.scheduler.progress()))
                    break
                except asyncio.TimeoutError:
                    continue
        except (ConnectionResetError, BrokenPipeError):
            return
        writer.write(b"0\r\n\r\n")

    def _handle_drain(
        self, writer: asyncio.StreamWriter, body: bytes
    ) -> None:
        try:
            payload = json.loads(body or b"{}")
        except json.JSONDecodeError as exc:
            raise _BadRequest(f"request body is not JSON: {exc}")
        if not isinstance(payload, dict):
            raise _BadRequest("drain body must be an object")
        if "workers" in payload:
            count = payload["workers"]
            if not isinstance(count, int) or count < 1:
                raise _BadRequest('"workers" must be a positive integer')
            granted = self.scheduler.drain_workers(count)
            self._respond(
                writer, 200,
                {"drained_workers": granted,
                 "workers": self.scheduler.progress()["workers"]},
            )
            return
        self.scheduler.begin_drain()
        self._respond(writer, 200, {"intake": "draining"})
