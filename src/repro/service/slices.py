"""Preemption-safe job execution: run in bounded cycle slices, snapshot
between slices, finish anywhere.

The scheduler's migration story rests on one function:
:func:`run_job_slice` executes *up to* ``max_cycles`` simulated cycles
of a job, starting either fresh or from a checkpoint taken by a
previous slice (possibly in a different worker process), and returns
either the finished result dict — byte-identical to
:func:`repro.harness.jobs.run_job` — or a new checkpoint.  Because the
checkpoint is the PR 5 ``snapshot()`` JSON form, it is picklable,
process-portable, and fingerprint-checked on restore: a slice sequence
spread across a drained worker, a crashed worker, and a respawned pool
replays to the same bits as one uninterrupted run
(``tests/test_service.py::TestSlices``).

Eligibility (:func:`sliceable`) is conservative: plain SMA and cluster
jobs only.  Speculative configurations are excluded because a snapshot
may not be taken mid-speculation, and a slice boundary can land inside
an open frame; scalar/vector/occupancy jobs have no snapshot contract
(observers force naive ticking anyway).  Ineligible jobs run atomically
through :func:`repro.harness.jobs.run_job` — preemption then loses at
most one job's progress, never its result.
"""

from __future__ import annotations

from dataclasses import replace

from ..config import SMAConfig
from ..errors import CheckpointError, SimulationError
from ..harness.jobs import (
    Job,
    _instantiated,
    _lowered_sma,
    cluster_result_dict,
    cluster_workloads,
    sma_result_dict,
)

#: job machine kinds with a snapshot()/restore() contract
SLICE_MACHINES = ("sma", "sma-nostream", "cluster")

#: hard ceiling matching run_on_sma/run_cluster's max_cycles default
MAX_TOTAL_CYCLES = 10_000_000


def sliceable(job: Job) -> bool:
    """Whether ``job`` can run in checkpointed slices."""
    if job.machine not in SLICE_MACHINES:
        return False
    cfg = job.sma_config
    if (cfg is not None and cfg.speculation is not None
            and cfg.speculation.enabled):
        # snapshots are refused mid-speculation, and a slice boundary
        # can land inside an open frame
        return False
    from ..harness.jobs import _metrics_armed

    if _metrics_armed():
        # an armed RunReport capture adds result keys the sliced path
        # does not produce; run such jobs atomically instead
        return False
    return True


def _build_sma(job: Job):
    """The exact machine :func:`repro.harness.runner.run_on_sma` builds
    for this job — same lowering, config fit and load order, so a
    snapshot taken from one is restorable into the other."""
    from ..core import SMAMachine
    from ..harness.runner import _fit_memory, _load_inputs

    use_streams = job.machine == "sma"
    kernel, inputs = _instantiated(job.kernel, job.n, job.seed)
    lowered = _lowered_sma(job.kernel, job.n, job.seed, use_streams,
                           job.lod_variant)
    cfg = job.sma_config or SMAConfig()
    cfg = replace(cfg, memory=_fit_memory(cfg.memory, lowered.layout))
    machine = SMAMachine(
        lowered.access_program, lowered.execute_program, cfg
    )
    _load_inputs(machine, lowered.layout, kernel, inputs)
    return machine, lowered, kernel


def _finish_sma(job: Job, machine, lowered, kernel) -> dict:
    from ..harness.runner import KernelRun, _dump_outputs

    # the machine is done: run() returns immediately with the collected
    # SMAResult, exactly as an uninterrupted run would have
    result = machine.run(max_cycles=MAX_TOTAL_CYCLES)
    run = KernelRun(
        kernel,
        "sma" if lowered.uses_streams else "sma-nostream",
        result,
        _dump_outputs(machine, lowered.layout, kernel),
        lowered.layout,
    )
    return sma_result_dict(job, run, lowered.info)


def _build_cluster(job: Job):
    from ..harness.runner import _prepare_cluster

    workloads = cluster_workloads(job)
    cluster, lowered, cfg, _metrics = _prepare_cluster(
        workloads, job.sma_config, metrics=False
    )
    return cluster, lowered, workloads, cfg


def _finish_cluster_job(job: Job, cluster, lowered, workloads, cfg) -> dict:
    from ..harness.runner import _finish_cluster

    cluster_result = cluster.run(max_cycles=MAX_TOTAL_CYCLES)
    run = _finish_cluster(
        cluster, lowered, workloads, cfg, cluster_result,
        job.check, None,
    )
    return cluster_result_dict(job, run)


def run_job_slice(job: Job, state: dict | None, max_cycles: int) -> dict:
    """Run one bounded slice of ``job``.

    ``state`` is the previous slice's checkpoint (or ``None`` for the
    first slice).  Returns ``{"done": True, "result": ...}`` when the
    job completed within the slice, else ``{"done": False, "state":
    <snapshot>, "cycle": <clock>}``.

    A checkpoint the current code refuses (``CheckpointError`` — e.g. a
    snapshot from a previous server generation after a code change) is
    discarded and the job restarts from cycle zero: slower, never wrong.
    """
    if max_cycles < 1:
        raise ValueError("slice budget must be >= 1 cycle")
    if job.machine == "cluster":
        cluster, lowered, workloads, cfg = _build_cluster(job)
        sim = cluster

        def finish():
            return _finish_cluster_job(job, cluster, lowered, workloads,
                                       cfg)
    else:
        machine, lowered, kernel = _build_sma(job)
        sim = machine

        def finish():
            return _finish_sma(job, machine, lowered, kernel)

    if state is not None:
        try:
            sim.restore(state)
        except CheckpointError:
            # stale checkpoint (code or config drift): restart fresh
            pass
    if not sim.done():
        if sim.cycle >= MAX_TOTAL_CYCLES:
            raise SimulationError(
                f"job exceeded {MAX_TOTAL_CYCLES} cycles without "
                "completing"
            )
        sim.step_cycles(max_cycles)
    if sim.done():
        return {"done": True, "result": finish()}
    return {"done": False, "state": sim.snapshot(), "cycle": sim.cycle}
