"""Content-addressed result store with ``job_key -> digest`` indirection.

The PR 5 harness cache is *job*-keyed: one JSON file per
``(code fingerprint, job)`` pair.  Sweep traffic at service scale is
mostly duplicate *results* — a saturated queue sweep produces hundreds
of byte-identical dicts under distinct job keys — so the store splits
the two namespaces::

    root/
      blobs/<sha256 of canonical result JSON>.json   # one per distinct result
      index/<job_key>.json                           # {"digest": "<sha256>"}

``put`` canonicalizes the result (sorted keys, no whitespace), hashes
the bytes, writes the blob only if that digest is new, and points the
job key at it — identical results across sweeps dedup to one blob.
Both writes are atomic (temp file + ``os.replace``), matching the
harness cache's crash-safety contract.

``get`` verifies the blob's digest against its filename on every read;
a torn or corrupted file (index or blob) is quarantined to
``<name>.corrupt`` — the same convention as
:func:`repro.harness.parallel._load_cache_entry` — and treated as a
miss, so one flipped bit costs a re-execution, never a wrong result.

:meth:`ContentStore.promote` imports an existing fingerprint-keyed
harness cache directory in place, which is how a ``repro sweep`` cache
becomes the seed of a service store.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path

_LOG = logging.getLogger("repro.service.store")


def result_digest(result: dict) -> str:
    """sha256 over the canonical JSON encoding of one result dict."""
    return hashlib.sha256(_canonical_bytes(result)).hexdigest()


def _canonical_bytes(result: dict) -> bytes:
    return json.dumps(
        result, sort_keys=True, separators=(",", ":")
    ).encode()


@dataclass
class StoreStats:
    """What the store did, surfaced through ``/v1/stats``."""

    puts: int = 0          #: results stored (index writes)
    dedup_hits: int = 0    #: puts whose blob already existed
    gets: int = 0          #: successful reads
    quarantined: int = 0   #: corrupt index/blob files moved aside
    promoted: int = 0      #: harness-cache entries imported

    def to_dict(self) -> dict:
        return dict(self.__dict__)


@dataclass
class ContentStore:
    """Content-addressed result store rooted at ``root``."""

    root: Path
    stats: StoreStats = field(default_factory=StoreStats)

    def __post_init__(self) -> None:
        self.root = Path(self.root)
        self._blobs = self.root / "blobs"
        self._index = self.root / "index"
        self._blobs.mkdir(parents=True, exist_ok=True)
        self._index.mkdir(parents=True, exist_ok=True)

    # -- paths ------------------------------------------------------------

    def _blob_path(self, digest: str) -> Path:
        return self._blobs / f"{digest}.json"

    def _index_path(self, key: str) -> Path:
        return self._index / f"{key}.json"

    # -- atomic write helper ----------------------------------------------

    def _write_atomic(self, path: Path, text: str) -> None:
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=path.stem[:16] + "-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(text)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def _quarantine(self, path: Path, why: str) -> None:
        quarantine = path.with_name(path.name + ".corrupt")
        try:
            os.replace(path, quarantine)
        except OSError:  # pragma: no cover - racing cleanup
            return
        self.stats.quarantined += 1
        _LOG.warning(
            "quarantined %s store entry %s -> %s",
            why, path.name, quarantine.name,
        )

    # -- core API ----------------------------------------------------------

    def put(self, key: str, result: dict) -> str:
        """Store ``result`` under job ``key``; returns its digest.

        The blob write is skipped when an identical result is already
        stored (counted in :attr:`StoreStats.dedup_hits`).
        """
        payload = _canonical_bytes(result)
        digest = hashlib.sha256(payload).hexdigest()
        blob = self._blob_path(digest)
        if blob.exists():
            self.stats.dedup_hits += 1
        else:
            self._write_atomic(blob, payload.decode())
        self._write_atomic(
            self._index_path(key),
            json.dumps({"digest": digest}),
        )
        self.stats.puts += 1
        return digest

    def digest_for(self, key: str) -> str | None:
        """The stored digest for a job key, or ``None`` (corrupt index
        entries are quarantined and read as a miss)."""
        path = self._index_path(key)
        try:
            text = path.read_text()
        except OSError:
            return None
        try:
            entry = json.loads(text)
            digest = entry["digest"]
        except (json.JSONDecodeError, TypeError, KeyError):
            self._quarantine(path, "undecodable index")
            return None
        if not isinstance(digest, str):
            self._quarantine(path, "malformed index")
            return None
        return digest

    def get_blob(self, digest: str) -> dict | None:
        """One stored result by digest, integrity-checked against its
        filename; corrupt blobs are quarantined and read as a miss."""
        path = self._blob_path(digest)
        try:
            data = path.read_bytes()
        except OSError:
            return None
        if hashlib.sha256(data).hexdigest() != digest:
            self._quarantine(path, "digest-mismatched blob")
            return None
        try:
            return json.loads(data)
        except json.JSONDecodeError:  # pragma: no cover - digest caught it
            self._quarantine(path, "undecodable blob")
            return None

    def get(self, key: str) -> dict | None:
        """The result for a job key, or ``None`` on any miss/corruption."""
        digest = self.digest_for(key)
        if digest is None:
            return None
        result = self.get_blob(digest)
        if result is None:
            # the index points at a missing/corrupt blob: drop the
            # dangling pointer so the job re-executes cleanly
            self._quarantine(self._index_path(key), "dangling index")
            return None
        self.stats.gets += 1
        return result

    def __contains__(self, key: str) -> bool:
        return self.digest_for(key) is not None

    # -- inventory ---------------------------------------------------------

    def result_count(self) -> int:
        """Number of indexed job keys."""
        return sum(1 for _ in self._index.glob("*.json"))

    def blob_count(self) -> int:
        """Number of distinct stored results (< result_count when
        dedup ever fired)."""
        return sum(1 for _ in self._blobs.glob("*.json"))

    # -- harness-cache interop ----------------------------------------------

    def promote(self, cache_dir: str | Path) -> int:
        """Import a fingerprint-keyed harness cache directory (the
        ``run_jobs(cache_dir=...)`` layout: one ``<job_key>.json`` per
        result).  Undecodable entries are skipped (the harness
        quarantines them on its own probes).  Returns the number of
        entries imported."""
        imported = 0
        for path in sorted(Path(cache_dir).glob("*.json")):
            try:
                result = json.loads(path.read_text())
            except (OSError, json.JSONDecodeError):
                continue
            self.put(path.stem, result)
            imported += 1
        self.stats.promoted += imported
        return imported

    def export(self, cache_dir: str | Path) -> int:
        """Write every indexed result out as a plain harness cache
        entry (the inverse of :meth:`promote`); returns the count."""
        cache = Path(cache_dir)
        cache.mkdir(parents=True, exist_ok=True)
        exported = 0
        for path in sorted(self._index.glob("*.json")):
            result = self.get(path.stem)
            if result is None:
                continue
            self._write_atomic(
                cache / f"{path.stem}.json", json.dumps(result)
            )
            exported += 1
        return exported
