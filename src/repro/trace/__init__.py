"""Cycle-resolution tracing utilities for the SMA machine."""

from .timeline import CycleRecord, TimelineRecorder
from .collectors import (
    CompositeObserver,
    ProgressSampler,
    QueueOccupancySampler,
    TimeSeries,
)

__all__ = [
    "CompositeObserver",
    "CycleRecord",
    "TimelineRecorder",
    "ProgressSampler",
    "QueueOccupancySampler",
    "TimeSeries",
]
