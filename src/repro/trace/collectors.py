"""Cycle-resolution trace collectors.

These attach to :meth:`repro.core.SMAMachine.run` through its ``observer``
hook and record per-cycle state for the time-series experiments (queue
occupancy profile, decoupling depth over time).  Collectors down-sample on
the fly — recording every ``stride``-th cycle — so arbitrarily long runs
stay cheap to trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class TimeSeries:
    """A down-sampled scalar signal over simulated time."""

    name: str
    stride: int
    cycles: list[int] = field(default_factory=list)
    values: list[float] = field(default_factory=list)

    def append(self, cycle: int, value: float) -> None:
        self.cycles.append(cycle)
        self.values.append(value)

    def bucketed(self, buckets: int) -> list[tuple[int, float]]:
        """Aggregate into ``buckets`` (cycle, mean value) points — the
        shape figures are plotted from."""
        if not self.cycles:
            return []
        span = self.cycles[-1] - self.cycles[0] + 1
        width = max(span // max(buckets, 1), 1)
        out: list[tuple[int, float]] = []
        acc, count, bucket_start = 0.0, 0, self.cycles[0]
        for cyc, val in zip(self.cycles, self.values):
            if cyc - bucket_start >= width and count:
                out.append((bucket_start, acc / count))
                acc, count = 0.0, 0
                bucket_start = cyc
            acc += val
            count += 1
        if count:
            out.append((bucket_start, acc / count))
        return out


class QueueOccupancySampler:
    """Records total load-queue occupancy (the instantaneous decoupling
    depth) and store-data occupancy, every ``stride`` cycles."""

    def __init__(self, stride: int = 1):
        self.stride = max(stride, 1)
        self.load = TimeSeries("load_queue_occupancy", self.stride)
        self.store = TimeSeries("store_data_occupancy", self.stride)

    def __call__(self, machine, cycle: int) -> None:
        if cycle % self.stride:
            return
        self.load.append(
            cycle, float(sum(len(q) for q in machine.queues.load))
        )
        self.store.append(
            cycle, float(sum(len(q) for q in machine.queues.store_data))
        )


class ProgressSampler:
    """Records retired-instruction counts of both processors over time;
    the gap between the two curves is the architectural slip."""

    def __init__(self, stride: int = 1):
        self.stride = max(stride, 1)
        self.ap = TimeSeries("ap_instructions", self.stride)
        self.ep = TimeSeries("ep_instructions", self.stride)

    def __call__(self, machine, cycle: int) -> None:
        if cycle % self.stride:
            return
        self.ap.append(cycle, float(machine.ap.stats.instructions))
        self.ep.append(cycle, float(machine.ep.stats.instructions))


class CompositeObserver:
    """Fan one observer hook out to several collectors."""

    def __init__(self, *observers):
        self.observers = observers

    def __call__(self, machine, cycle: int) -> None:
        for obs in self.observers:
            obs(machine, cycle)
