"""Cycle-by-cycle execution timeline (a decoupled-pipeline diagram).

:class:`TimelineRecorder` attaches to :meth:`repro.core.SMAMachine.run`
as an observer and records, for every cycle, what each unit did: the
instruction the AP/EP retired (or the stall cause that held it), how many
requests the stream engine issued, and whether the store unit committed a
store.  :meth:`TimelineRecorder.render` lays the recording out one line
per cycle::

    cycle | access processor       | execute processor      |eng|st
    ------+------------------------+------------------------+---+--
        0 | mov r1, #16            | mov r1, #8             | . | .
        1 | streamld lq0, r1, #1.. | ~lq_empty              | 1 | .
        2 | halt                   | ~lq_empty              | 1 | .
        ...

Stall cycles show as ``~cause``; cycles after halt show as ``#``.  This is
the tool that makes the decoupling *visible*: the access column finishes
within a few lines while the execute column keeps consuming, with the
engine column streaming between them.

A recorder built with ``every_cycle=False`` declares
``wants_every_cycle = False``, so :meth:`repro.core.SMAMachine.run` keeps
the event-horizon scheduler active instead of dropping to naive ticking:
live cycles arrive through the normal callback, and each fast-forwarded
stall span arrives as a single *compressed* record (``repeat > 1``)
through :meth:`TimelineRecorder.on_replay` — a coarse timeline of a
billion-cycle run costs memory proportional to the interesting cycles, not
the idle ones.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CycleRecord:
    cycle: int
    ap_event: str   # instruction text, "~<cause>", or "#" (halted)
    ep_event: str
    engine_issues: int
    store_issued: bool
    #: number of consecutive identical cycles this record stands for
    #: (``> 1`` only for fast-forwarded stall spans, which repeat the
    #: preceding template cycle exactly)
    repeat: int = 1

    @property
    def last_cycle(self) -> int:
        return self.cycle + self.repeat - 1


class TimelineRecorder:
    """Observer that reconstructs per-cycle unit activity.

    Works by differencing the statistics counters between consecutive
    observer callbacks; the instruction retired in a cycle is the one the
    program counter pointed at when the cycle began.
    """

    def __init__(self, max_cycles: int = 100_000, every_cycle: bool = True):
        self.max_cycles = max_cycles
        #: consumed by SMAMachine.run: True forces naive ticking so every
        #: cycle is observed; False keeps event-horizon scheduling active
        #: and compresses skipped stall spans via on_replay
        self.wants_every_cycle = every_cycle
        self.records: list[CycleRecord] = []
        # snapshot at the end of the previous cycle; a fresh machine
        # always begins at (pc=0, zero counters), so cycle 0 is recorded
        self._prev = (0, 0, 0, 0, 0, 0)
        # per-cause stall counters at the end of the previous cycle: the
        # cause whose counter incremented *this* cycle is this cycle's
        # stall, independent of any cumulative totals
        self._prev_ap_stalls: dict[str, int] = {}
        self._prev_ep_stalls: dict[str, int] = {}

    def __call__(self, machine, cycle: int) -> None:
        ap, ep = machine.ap, machine.ep
        current = (
            ap.pc,
            ap.stats.instructions,
            ep.pc,
            ep.stats.instructions,
            machine.engine.stats.requests_issued,
            machine.store_unit.stats.stores_issued,
        )
        if len(self.records) < self.max_cycles:
            prev_ap_pc, prev_ap_n, prev_ep_pc, prev_ep_n, prev_req, \
                prev_stores = self._prev
            self.records.append(CycleRecord(
                cycle=cycle,
                ap_event=self._event(
                    ap, prev_ap_pc, current[1] - prev_ap_n,
                    self._stall_delta(ap.stats.stall_cycles,
                                      self._prev_ap_stalls),
                ),
                ep_event=self._event(
                    ep, prev_ep_pc, current[3] - prev_ep_n,
                    self._stall_delta(ep.stats.stall_cycles,
                                      self._prev_ep_stalls),
                ),
                engine_issues=current[4] - prev_req,
                store_issued=current[5] > prev_stores,
            ))
        self._prev = current
        self._prev_ap_stalls = dict(ap.stats.stall_cycles)
        self._prev_ep_stalls = dict(ep.stats.stall_cycles)

    def on_replay(self, machine, start_cycle: int, count: int) -> None:
        """Record a fast-forwarded stall span (event-horizon scheduling
        only): cycles ``start_cycle .. start_cycle + count - 1`` repeated
        the immediately preceding live cycle exactly, so they compress
        into one record.  The closed-form replay has already scaled the
        stall counters, so the previous-cycle stall snapshots must be
        re-synced here or the next live cycle would mis-attribute the
        whole span's increments to itself."""
        if self.records and len(self.records) < self.max_cycles:
            template = self.records[-1]
            self.records.append(CycleRecord(
                cycle=start_cycle,
                ap_event=template.ap_event,
                ep_event=template.ep_event,
                engine_issues=0,
                store_issued=False,
                repeat=count,
            ))
        self._prev_ap_stalls = dict(machine.ap.stats.stall_cycles)
        self._prev_ep_stalls = dict(machine.ep.stats.stall_cycles)

    @staticmethod
    def _stall_delta(stalls: dict[str, int], prev: dict[str, int]) -> str | None:
        """The cause whose counter incremented this cycle (a processor
        records at most one stall cause per cycle), or None."""
        for cause, value in stalls.items():
            if value > prev.get(cause, 0):
                return cause
        return None

    @staticmethod
    def _event(processor, fetched_pc: int, retired: int,
               cause: str | None) -> str:
        if retired:
            if fetched_pc < len(processor.program):
                return str(processor.program[fetched_pc])
            return "?"
        if processor.halted:
            return "#"
        if cause:
            return f"~{cause}"
        return "~"

    # -- rendering -------------------------------------------------------

    def render(
        self,
        first: int = 0,
        last: int | None = None,
        column_width: int = 26,
    ) -> str:
        """Render cycles ``[first, last]`` as a text table."""
        rows = [
            r for r in self.records
            if r.last_cycle >= first and (last is None or r.cycle <= last)
        ]
        if not rows:
            return "(no cycles recorded in range)"

        def clip(text: str) -> str:
            if len(text) > column_width:
                return text[: column_width - 2] + ".."
            return text.ljust(column_width)

        header = (
            f"cycle | {'access processor'.ljust(column_width)} | "
            f"{'execute processor'.ljust(column_width)} |eng|st"
        )
        sep = (
            "------+-" + "-" * column_width + "-+-"
            + "-" * column_width + "-+---+--"
        )
        lines = [header, sep]
        for r in rows:
            engine = str(r.engine_issues) if r.engine_issues else "."
            store = "1" if r.store_issued else "."
            lines.append(
                f"{r.cycle:5d} | {clip(r.ap_event)} | {clip(r.ep_event)} "
                f"| {engine} | {store}"
            )
            if r.repeat > 1:
                lines.append(
                    f"      | ... repeated through cycle {r.last_cycle} "
                    f"({r.repeat} cycles)"
                )
        return "\n".join(lines)
