"""Write-sequence verification: a stronger check than final-state equality.

Two machines can end a run with identical memory images while having done
different — and differently *wrong* — things along the way (a transient
bad value overwritten by a later correct one, stores landing out of
program order per address, double stores).  This module records the full
functional access trace of a run and checks the **per-address write
sequence** against the sequential semantics of the kernel:

* :class:`MemoryTracer` — hooks a machine's functional store and records
  every simulated read and write;
* :func:`reference_write_sequences` — the golden per-address write
  sequences, derived by running the IR reference interpreter with a
  recording hook and mapping (array, index) to addresses through the
  kernel's layout;
* :func:`diff_write_sequences` — structural comparison with a readable
  mismatch report;
* :func:`verify_kernel_writes` — one-call check of any machine run.

The per-address *order* matters and is what a decoupled machine could
plausibly get wrong (loads lead stores; two store streams interleave at
the memory); per-address sequences sidestep legitimate cross-address
reordering, which decoupling is allowed — indeed designed — to do.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from .config import ScalarConfig, SMAConfig
from .kernels import Kernel, lower_scalar, lower_sma
from .kernels.layout import Layout
from .kernels.reference import ReferenceInterpreter


@dataclass
class MemoryTracer:
    """Records every functional memory access of a simulated run."""

    #: (kind, address, value) in occurrence order; kind is "r" or "w"
    events: list[tuple[str, int, float]] = field(default_factory=list)

    def __call__(self, kind: str, addr: int, value: float) -> None:
        self.events.append((kind, addr, value))

    def install(self, machine) -> "MemoryTracer":
        """Attach to a machine's functional store; returns self."""
        machine.memory.observer = self
        return self

    def write_sequences(self) -> dict[int, list[float]]:
        """Per-address ordered list of written values."""
        sequences: dict[int, list[float]] = {}
        for kind, addr, value in self.events:
            if kind == "w":
                sequences.setdefault(addr, []).append(value)
        return sequences

    def read_addresses(self) -> set[int]:
        return {addr for kind, addr, _ in self.events if kind == "r"}

    @property
    def reads(self) -> int:
        return sum(1 for kind, _, _ in self.events if kind == "r")

    @property
    def writes(self) -> int:
        return sum(1 for kind, _, _ in self.events if kind == "w")


def reference_write_sequences(
    kernel: Kernel,
    inputs: Mapping[str, np.ndarray],
    layout: Layout,
) -> dict[int, list[float]]:
    """Golden per-address write sequences under sequential semantics."""
    from .kernels.ir import Assign, Loop, Reduce

    interp = ReferenceInterpreter(kernel, inputs)
    sequences: dict[int, list[float]] = {}

    def run(stmt) -> None:
        if isinstance(stmt, Loop):
            # mirror the reference semantics: reductions reset at each
            # entry of their innermost loop and store at each exit
            direct = [s for s in stmt.body if isinstance(s, Reduce)]
            for red in direct:
                interp._acc[id(red)] = float(red.init)
            for i in range(stmt.start, stmt.start + stmt.count):
                interp._env[stmt.var] = i
                for inner in stmt.body:
                    run(inner)
            for red in direct:
                value = interp._acc.pop(id(red))
                index = interp._index(red.dest)
                interp.arrays[red.dest.array][index] = value
                addr = layout.base(red.dest.array) + index
                sequences.setdefault(addr, []).append(float(value))
            del interp._env[stmt.var]
        elif isinstance(stmt, Assign):
            value = interp._expr(stmt.expr)
            index = interp._index(stmt.dest)
            interp.arrays[stmt.dest.array][index] = value
            addr = layout.base(stmt.dest.array) + index
            sequences.setdefault(addr, []).append(float(value))
        else:
            assert isinstance(stmt, Reduce)
            acc = interp._acc[id(stmt)]
            interp._acc[id(stmt)] = _reduce_step(stmt.op, acc,
                                                 interp._expr(stmt.expr))

    for stmt in kernel.body:
        run(stmt)
    return sequences


def _reduce_step(op: str, acc: float, value: float) -> float:
    if op == "+":
        return acc + value
    if op == "min":
        return min(acc, value)
    assert op == "max"
    return max(acc, value)


@dataclass(frozen=True)
class WriteMismatch:
    address: int
    expected: tuple[float, ...]
    actual: tuple[float, ...]

    def __str__(self) -> str:
        return (
            f"addr {self.address}: expected writes {list(self.expected)}, "
            f"observed {list(self.actual)}"
        )


def diff_write_sequences(
    expected: dict[int, list[float]],
    actual: dict[int, list[float]],
) -> list[WriteMismatch]:
    """All addresses whose write sequences differ (missing = empty)."""
    mismatches = []
    for addr in sorted(set(expected) | set(actual)):
        want = tuple(expected.get(addr, ()))
        got = tuple(actual.get(addr, ()))
        if want != got:
            mismatches.append(WriteMismatch(addr, want, got))
    return mismatches


def verify_kernel_writes(
    kernel: Kernel,
    inputs: Mapping[str, np.ndarray],
    machine: str = "sma",
    sma_config: SMAConfig | None = None,
    scalar_config: ScalarConfig | None = None,
) -> list[WriteMismatch]:
    """Run ``kernel`` on the named machine with a tracer attached and
    compare its per-address write sequence against sequential semantics.
    Returns the (hopefully empty) mismatch list.
    """
    from .harness.runner import _fit_memory, _load_inputs

    if machine in ("sma", "sma-nostream"):
        from .core import SMAMachine
        from dataclasses import replace

        lowered = lower_sma(kernel, use_streams=(machine == "sma"))
        cfg = sma_config or SMAConfig()
        cfg = replace(cfg, memory=_fit_memory(cfg.memory, lowered.layout))
        sim = SMAMachine(lowered.access_program, lowered.execute_program, cfg)
        layout = lowered.layout
    elif machine == "scalar":
        from .baseline import ScalarMachine
        from dataclasses import replace

        lowered_s = lower_scalar(kernel)
        cfg_s = scalar_config or ScalarConfig()
        cfg_s = replace(
            cfg_s, memory=_fit_memory(cfg_s.memory, lowered_s.layout)
        )
        sim = ScalarMachine(lowered_s.program, cfg_s)
        layout = lowered_s.layout
    else:
        raise ValueError(f"unknown machine {machine!r}")
    _load_inputs(sim, layout, kernel, inputs)
    tracer = MemoryTracer().install(sim)
    sim.run()
    golden = reference_write_sequences(kernel, inputs, layout)
    return diff_write_sequences(golden, tracer.write_sequences())
