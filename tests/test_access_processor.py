"""Access processor: ops, stall causes, LOD accounting, legality."""

import pytest

from repro.config import SMAConfig
from repro.core import SMAMachine
from repro.errors import SimulationError
from repro.isa import assemble


def machine(ap_src, ep_src="halt", config=None):
    return SMAMachine(
        assemble(ap_src, "ap"), assemble(ep_src, "ep"),
        config or SMAConfig(),
    )


class TestALUAndControl:
    def test_arithmetic(self):
        m = machine("""
            mov a1, #6
            mov a2, #7
            mul a3, a1, a2
            halt
        """)
        m.run()
        assert m.ap.registers[3] == 42

    def test_decbnz_loop_count(self):
        m = machine("""
            mov a1, #5
            mov a2, #0
            top: add a2, a2, #2
            decbnz a1, top
            halt
        """)
        m.run()
        assert m.ap.registers[2] == 10

    def test_beqz_bnez(self):
        m = machine("""
            mov a1, #0
            beqz a1, skip
            mov a2, #111
            skip: mov a3, #5
            halt
        """)
        m.run()
        assert m.ap.registers[2] == 0
        assert m.ap.registers[3] == 5

    def test_jmp(self):
        m = machine("jmp end\nmov a1, #9\nend: halt")
        m.run()
        assert m.ap.registers[1] == 0

    def test_illegal_op_rejected_at_construction(self):
        with pytest.raises(SimulationError, match="not a valid access"):
            machine("load a1, a2, #0\nhalt")

    def test_running_off_end(self):
        m = machine("nop\nhalt", "halt")
        m.ap.program = assemble("nop", require_halt=False)
        with pytest.raises(SimulationError, match="ran off"):
            m.run()


class TestMemoryOps:
    def test_ldq_single_load(self):
        m = machine("""
            ldq lq0, #20, #0
            halt
        """, """
            mov x1, lq0
            halt
        """)
        m.memory.write(20, 3.5)
        m.run()
        assert m.ep.registers[1] == 3.5

    def test_staddr_pairs_with_sdq(self):
        m = machine("""
            staddr sdq0, #30, #2
            halt
        """, """
            mov sdq0, #8.25
            halt
        """)
        m.run()
        assert m.memory.read(32) == 8.25

    def test_streams_and_store(self):
        m = machine("""
            streamld lq0, #10, #1, #4
            streamst sdq0, #50, #1, #4
            halt
        """, """
            mov x1, #4
            t: add sdq0, lq0, #1.0
            decbnz x1, t
            halt
        """)
        m.load_array(10, [1.0, 2.0, 3.0, 4.0])
        m.run()
        assert m.dump_array(50, 4).tolist() == [2.0, 3.0, 4.0, 5.0]

    def test_stream_queue_busy_stall(self):
        # two load streams to the same queue: the second must wait for the
        # first to finish, never interleave
        m = machine("""
            streamld lq0, #10, #1, #4
            streamld lq0, #20, #1, #4
            halt
        """, """
            mov x1, #8
            mov x2, #0
            t: add x2, x2, lq0
            decbnz x1, t
            halt
        """)
        m.load_array(10, [1.0] * 4)
        m.load_array(20, [10.0] * 4)
        res = m.run()
        assert m.ep.registers[2] == 44.0
        assert res.ap.stall_cycles.get("stream_queue_busy", 0) > 0


class TestLossOfDecoupling:
    def test_fromq_eaq_counts_lod(self):
        m = machine("""
            fromq a1, eaq
            ldq lq0, a1, #0
            halt
        """, """
            mov eaq, #25
            mov x1, lq0
            halt
        """)
        m.memory.write(25, 6.5)
        res = m.run()
        assert m.ep.registers[1] == 6.5
        assert res.lod_events >= 1
        assert res.ap.stall_cycles.get("lod_eaq", 0) >= 0

    def test_bqnz_branch_queue(self):
        # EP decides loop exit; AP spins on the branch queue
        m = machine("""
            mov a2, #0
            top: bqez a2q_done
            add a2, a2, #1
            jmp top
            a2q_done: halt
        """, """
            mov x1, #3
            t: cmpne ebq, x1, #1
            decbnz x1, t
            halt
        """)
        res = m.run()
        # EP pushed 1,1,0-ish comparisons: x1 = 3,2,1 -> cmpne(3,1)=1,
        # cmpne(2,1)=1, cmpne(1,1)=0 -> AP increments twice then exits
        assert m.ap.registers[2] == 2
        assert res.ap.stall_cycles.get("lod_ebq", 0) > 0

    def test_lod_events_count_episodes_not_cycles(self):
        m = machine("""
            fromq a1, eaq
            halt
        """, """
            mov x1, #40
            t: decbnz x1, t
            mov eaq, #1
            halt
        """)
        res = m.run()
        assert res.lod_events == 1
        assert res.ap.stall_cycles["lod_eaq"] > 10


class TestStallAccounting:
    def test_total_and_breakdown_consistent(self):
        m = machine("""
            streamld lq0, #10, #1, #16
            streamld lq0, #10, #1, #16
            halt
        """, """
            mov x1, #32
            t: mov x2, lq0
            decbnz x1, t
            halt
        """)
        res = m.run()
        assert res.ap.total_stalls() == sum(res.ap.stall_cycles.values())
