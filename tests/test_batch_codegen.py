"""Program-specialized batch codegen: bit-exactness and dispatch.

The batch lane stepper (:mod:`repro.batch.emitter`) compiles one
straight-line numpy loop per decoded AP/EP program pair, and the
dispatch layer adds saturation collapse (deep-queue lanes served from a
probe run) and multi-process sharding on top.  None of that may ever
move a number.  This suite pins:

* compiled vs interpreted vs scalar equivalence on random lane grids
  (full result dicts, per-lane stats, memory-image digests);
* every suite kernel specializes (``compiled=True`` never falls back);
* the saturation-collapse planner only collapses provably-dominated
  lanes, and collapsed results equal per-lane scalar reruns;
* the fingerprint cache compiles once per program pair and falls back
  to the interpreter (negative cache) when emission is unsupported;
* sharded runs (``workers=2`` / ``--batch-workers``) are result- and
  cache-interchangeable with in-driver runs;
* two dispatch regressions: speculation-enabled configs stay on the
  scalar path, and ``lod_variant`` jobs land in distinct lane groups.
"""

import hashlib

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.batch import LaneEngine, run_batch
from repro.batch.cache import clear_cache, stats as cache_stats
from repro.batch.decode import QueueLayout
from repro.batch.dispatch import (
    _BATCH_MACHINES,
    _collapse_classes,
    _group_key,
    batch_eligible,
    plan_groups,
    run_group,
)
from repro.config import (
    MemoryConfig,
    QueueConfig,
    SMAConfig,
    SpeculationConfig,
)
from repro.harness.jobs import (
    BatchJob,
    Job,
    _instantiated,
    _lowered_sma,
    run_job,
)
from repro.harness.parallel import harness_policy, run_jobs
from repro.harness.runner import _fit_memory
from repro.kernels import all_kernels

KERNELS = ("daxpy", "tridiag", "computed_gather")


def _grid_config(latency: int, depth: int, banks: int) -> SMAConfig:
    """The experiments' sweep convention (mirrors BatchJob.expand)."""
    return SMAConfig(
        memory=MemoryConfig(
            latency=latency, bank_busy=max(1, latency // 2),
            num_banks=banks,
        ),
        queues=QueueConfig(
            load_queue_depth=depth, store_data_depth=depth,
            store_addr_depth=depth, index_queue_depth=depth,
        ),
    )


# ---------------------------------------------------------------------------
# compiled vs interpreted vs scalar
# ---------------------------------------------------------------------------


@settings(max_examples=10, deadline=None)
@given(
    st.sampled_from(KERNELS),
    st.sampled_from(("sma", "sma-nostream")),
    st.lists(st.integers(1, 96), min_size=1, max_size=3, unique=True),
    st.lists(st.integers(1, 40), min_size=1, max_size=4, unique=True),
    st.data(),
)
def test_random_grid_compiled_interpreted_scalar_agree(
    kernel, machine, latencies, depths, data
):
    jobs = BatchJob(
        kernel, 28, machine=machine,
        latencies=tuple(latencies), queue_depths=tuple(depths),
    ).expand()
    compiled = run_batch(jobs)
    interpreted = run_batch(jobs, compiled=False)
    assert compiled == interpreted
    lane = data.draw(st.integers(0, len(jobs) - 1))
    assert compiled[lane] == run_job(jobs[lane])


@pytest.mark.parametrize("machine", ["sma", "sma-nostream"])
@pytest.mark.parametrize(
    "kernel", [spec.name for spec in all_kernels()]
)
def test_every_suite_program_specializes(kernel, machine):
    """``compiled=True`` demands the generated stepper — it must exist
    for every kernel in the suite, on both batch machines, and agree
    with the scalar interpreter."""
    job = Job(machine, kernel, 24, sma_config=_grid_config(8, 4, 8))
    assert run_group([job], compiled=True)[0] == run_job(job)


def _staged_engine(kernel_name, machine, n, configs):
    """Build one multi-lane engine the way ``dispatch.run_group`` does,
    so digests read the engine's own memory planes, not a re-run."""
    use_streams = _BATCH_MACHINES[machine]
    kernel, inputs = _instantiated(kernel_name, n, 12345)
    lowered = _lowered_sma(kernel_name, n, 12345, use_streams)
    layout = lowered.layout
    fitted = [
        cfg.__class__(
            **{**cfg.__dict__, "memory": _fit_memory(cfg.memory, layout)}
        )
        for cfg in configs
    ]
    size = max(cfg.memory.size for cfg in fitted)
    touched = layout.end + 16
    for program in (lowered.access_program, lowered.execute_program):
        for base, values in program.data:
            touched = max(touched, base + len(values))
    image = np.zeros(min(touched, size), dtype=np.float64)
    for program in (lowered.access_program, lowered.execute_program):
        for base, values in program.data:
            image[base:base + len(values)] = np.asarray(
                values, dtype=np.float64
            )
    for decl in kernel.arrays:
        arr = np.asarray(inputs[decl.name], dtype=np.float64)
        image[layout.base(decl.name):][:arr.shape[0]] = arr
    engine = LaneEngine(
        lowered.access_program, lowered.execute_program, fitted,
        image, logical_size=size,
    )
    return kernel, layout, engine


@pytest.mark.parametrize("kernel", KERNELS)
def test_compiled_memory_digests_and_lane_dicts_match(kernel):
    depths = (1, 2, 5, 9, 33)
    configs = [_grid_config(11, depth, 4) for depth in depths]
    spec, layout, compiled_eng = _staged_engine(kernel, "sma", 32, configs)
    _, _, interp_eng = _staged_engine(kernel, "sma", 32, configs)
    compiled_out = compiled_eng.run(compiled=True)
    interp_out = interp_eng.run(compiled=False)
    for lane in range(len(depths)):
        assert (compiled_out.stats.lane_dict(lane)
                == interp_out.stats.lane_dict(lane))
        for decl in spec.arrays:
            digests = [
                hashlib.sha256(
                    np.asarray(
                        out.dump_array(
                            lane, layout.base(decl.name), decl.size
                        ),
                        dtype=np.float64,
                    ).tobytes()
                ).hexdigest()
                for out in (compiled_out, interp_out)
            ]
            assert digests[0] == digests[1], (
                f"{kernel}.{decl.name} memory image diverges at lane "
                f"{lane} (depth {depths[lane]})"
            )


# ---------------------------------------------------------------------------
# saturation collapse
# ---------------------------------------------------------------------------


def test_collapse_planner_picks_dominating_probe():
    configs = [_grid_config(8, depth, 8) for depth in (1, 4, 64)]
    configs.append(_grid_config(9, 2, 8))  # different residual class
    qlay = QueueLayout.from_config(configs[0])
    classes = _collapse_classes(configs, qlay)
    assert len(classes) == 1  # the latency-9 lane is a singleton
    probe, members, caps = classes[0]
    assert probe == 2 and members == [0, 1, 2]
    assert (caps[members.index(probe)] == caps.max(axis=0)).all()


def test_collapse_planner_requires_componentwise_dominator():
    # load depth and index depth pull in opposite directions: neither
    # lane dominates, so the planner must simulate both
    a = SMAConfig(queues=QueueConfig(load_queue_depth=4,
                                     index_queue_depth=1))
    b = SMAConfig(queues=QueueConfig(load_queue_depth=1,
                                     index_queue_depth=4))
    assert _collapse_classes([a, b], QueueLayout.from_config(a)) == []


def test_collapse_skips_dominated_lanes_bit_exactly(monkeypatch):
    jobs = BatchJob(
        "daxpy", 32, latencies=(8,), queue_depths=tuple(range(1, 33)),
    ).expand()
    lanes_simulated = []
    real_run = LaneEngine.run

    def spy(self, *args, **kwargs):
        lanes_simulated.append(self.now.shape[0])
        return real_run(self, *args, **kwargs)

    monkeypatch.setattr(LaneEngine, "run", spy)
    results = run_batch(jobs)
    assert len(results) == len(jobs)
    # the probe run plus the saturated residue must cover fewer lanes
    # than the grid: the deep-queue tail was served from the probe
    assert sum(lanes_simulated) < len(jobs)
    # ...and the served lanes are still bit-exact against the scalar
    # interpreter (first/middle/deepest, all collapse candidates)
    for lane in (0, 15, 31):
        assert results[lane] == run_job(jobs[lane])


# ---------------------------------------------------------------------------
# artifact cache
# ---------------------------------------------------------------------------


def test_one_compile_serves_the_whole_grid():
    clear_cache()
    jobs = BatchJob(
        "daxpy", 24, latencies=(2, 8, 32), queue_depths=(2, 8),
    ).expand()
    first = run_batch(jobs)
    assert cache_stats.compiles == 1
    assert run_batch(jobs) == first
    assert cache_stats.compiles == 1  # second sweep is all cache hits
    assert cache_stats.hits >= 1


def test_unsupported_program_falls_back_to_interpreter(monkeypatch):
    from repro.batch.emitter import LaneLoopEmitter, Unsupported

    clear_cache()

    def refuse(self):
        raise Unsupported("forced by test")

    monkeypatch.setattr(LaneLoopEmitter, "generate", refuse)
    try:
        jobs = BatchJob(
            "daxpy", 24, latencies=(2, 8), queue_depths=(2, 8),
        ).expand()
        results = run_batch(jobs)
        assert cache_stats.unsupported >= 1
        for i, job in enumerate(jobs):
            assert results[i] == run_job(job)
    finally:
        clear_cache()  # drop the poisoned negative-cache entry


# ---------------------------------------------------------------------------
# sharding
# ---------------------------------------------------------------------------


def test_sharded_run_batch_matches_in_driver():
    jobs = BatchJob(
        "daxpy", 24, latencies=(2, 8, 32), queue_depths=(1, 4, 16),
    ).expand()
    jobs.extend(
        BatchJob(
            "tridiag", 24, latencies=(4, 16), queue_depths=(2, 8),
        ).expand()
    )
    assert run_batch(jobs, workers=2) == run_batch(jobs)


def test_run_jobs_batch_workers_cache_interchangeable(tmp_path):
    jobs = BatchJob(
        "daxpy", 24, latencies=(2, 8), queue_depths=(1, 4),
    ).expand()
    sharded = run_jobs(
        jobs, cache_dir=tmp_path, backend="batch", batch_workers=2
    )
    assert sharded == run_jobs(jobs)
    # shard-flushed entries serve a later scalar-backend sweep verbatim
    with harness_policy() as stats:
        assert run_jobs(jobs, cache_dir=tmp_path) == sharded
    assert stats.hits == len(jobs)


# ---------------------------------------------------------------------------
# dispatch regressions
# ---------------------------------------------------------------------------


def test_speculative_configs_stay_on_scalar_path():
    """Regression: an *enabled* speculative AP config used to slip into
    a lane group (the gate only looked for a non-None config object) and
    silently report non-speculative timing."""
    armed = SMAConfig(speculation=SpeculationConfig(accuracy=0.5))
    disarmed = SMAConfig(speculation=SpeculationConfig(mode="never"))
    assert not batch_eligible(Job("sma", "tridiag", 24, sma_config=armed))
    assert batch_eligible(Job("sma", "tridiag", 24, sma_config=disarmed))
    jobs = [
        Job("sma", "tridiag", 24, sma_config=armed),
        Job("sma", "tridiag", 24, sma_config=disarmed),
    ]
    assert [i for group in plan_groups(jobs) for i in group] == [1]
    # end to end: the batch backend must hand the armed job to the
    # scalar path, so both backends report identical (speculative)
    # timing
    assert run_jobs(jobs, backend="batch") == run_jobs(jobs)


def test_lod_variant_jobs_get_distinct_lane_groups():
    """Regression: the group key ignored ``lod_variant``, so an
    ``addr``/``branch`` relowering could share a lane group with the
    default lowering and run the wrong program."""
    base = Job("sma", "tridiag", 24)
    variant = Job("sma", "tridiag", 24, lod_variant="branch")
    assert _group_key(base) != _group_key(variant)
    assert len(plan_groups([base, variant])) == 2
    results = run_batch([base, variant])
    assert results[0] == run_job(base)
    assert results[1] == run_job(variant)
    assert results[0] != results[1]  # the relowering times differently
