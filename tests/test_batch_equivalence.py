"""Batch-engine equivalence: the SoA lockstep simulator is bit-exact.

The batch backend (:mod:`repro.batch`) exists purely for sweep
throughput; it must never move a number.  This suite pins that from
three directions:

* Hypothesis draws random (kernel, machine, latency, depth, banks)
  lanes and requires the *full result dict* — cycles, instruction
  counts, every stall bucket with its ordering, memory traffic,
  occupancy — to equal the scalar interpreter's, plus a sha256 digest
  over the final memory image of every kernel array.
* A fixed dense grid runs once through ``run_batch`` and Hypothesis
  subsamples lanes against per-lane scalar reruns, exercising the
  divergent-lane masking (different lanes finish thousands of cycles
  apart).
* The experiments that route through ``backend="batch"`` must
  reproduce ``golden_experiments.json`` bit-identically, same as the
  scalar path.
"""

import hashlib
import json
import pathlib

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.batch import run_batch
from repro.batch.dispatch import _BATCH_MACHINES, batch_eligible
from repro.batch.engine import LaneEngine
from repro.config import MemoryConfig, QueueConfig, SMAConfig
from repro.harness.experiments import EXPERIMENTS
from repro.harness.jobs import (
    BatchJob,
    Job,
    _instantiated,
    _lowered_sma,
    run_job,
)
from repro.harness.parallel import harness_policy, run_jobs
from repro.harness.runner import _fit_memory, run_on_sma

GOLDEN = json.loads(
    (pathlib.Path(__file__).parent / "golden_experiments.json").read_text()
)

KERNELS = ("daxpy", "tridiag", "computed_gather")


def _grid_config(latency: int, depth: int, banks: int) -> SMAConfig:
    """The experiments' sweep convention (mirrors BatchJob.expand)."""
    return SMAConfig(
        memory=MemoryConfig(
            latency=latency, bank_busy=max(1, latency // 2),
            num_banks=banks,
        ),
        queues=QueueConfig(
            load_queue_depth=depth, store_data_depth=depth,
            store_addr_depth=depth, index_queue_depth=depth,
        ),
    )


lane_params = st.tuples(
    st.sampled_from(KERNELS),
    st.sampled_from(("sma", "sma-nostream")),
    st.integers(min_value=1, max_value=96),      # latency
    st.integers(min_value=1, max_value=24),      # queue depth
    st.sampled_from((1, 2, 4, 8, 16)),           # banks
)


@settings(max_examples=20, deadline=None)
@given(lane_params)
def test_random_lane_matches_scalar_interpreter(params):
    kernel, machine, latency, depth, banks = params
    job = Job(machine, kernel, 32,
              sma_config=_grid_config(latency, depth, banks))
    got = run_batch([job])
    assert set(got) == {0}
    assert got[0] == run_job(job)


def _memory_digests(job: Job) -> tuple[str, str]:
    """sha256 over every kernel array's final memory image, batch and
    scalar side.  The batch staging below mirrors ``dispatch.run_group``
    so the digest reads the engine's own memory planes, not a re-run."""
    use_streams = _BATCH_MACHINES[job.machine]
    kernel, inputs = _instantiated(job.kernel, job.n, job.seed)
    lowered = _lowered_sma(job.kernel, job.n, job.seed, use_streams)
    layout = lowered.layout
    cfg = job.sma_config
    cfg = cfg.__class__(
        **{**cfg.__dict__, "memory": _fit_memory(cfg.memory, layout)}
    )

    touched = layout.end + 16
    for program in (lowered.access_program, lowered.execute_program):
        for base, values in program.data:
            touched = max(touched, base + len(values))
    image = np.zeros(min(touched, cfg.memory.size), dtype=np.float64)
    for program in (lowered.access_program, lowered.execute_program):
        for base, values in program.data:
            image[base:base + len(values)] = np.asarray(
                values, dtype=np.float64
            )
    for decl in kernel.arrays:
        arr = np.asarray(inputs[decl.name], dtype=np.float64)
        image[layout.base(decl.name):][:arr.shape[0]] = arr

    engine = LaneEngine(
        lowered.access_program, lowered.execute_program, [cfg],
        image, logical_size=cfg.memory.size,
    )
    outcome = engine.run()
    batch = hashlib.sha256()
    for decl in kernel.arrays:
        batch.update(
            outcome.dump_array(0, layout.base(decl.name), decl.size)
            .astype(np.float64).tobytes()
        )

    run = run_on_sma(kernel, inputs, job.sma_config, use_streams, lowered)
    scalar = hashlib.sha256()
    for decl in kernel.arrays:
        scalar.update(
            np.asarray(run.outputs[decl.name], dtype=np.float64).tobytes()
        )
    return batch.hexdigest(), scalar.hexdigest()


@settings(max_examples=8, deadline=None)
@given(lane_params)
def test_memory_image_digest_matches(params):
    kernel, machine, latency, depth, banks = params
    job = Job(machine, kernel, 32,
              sma_config=_grid_config(latency, depth, banks))
    batch_digest, scalar_digest = _memory_digests(job)
    assert batch_digest == scalar_digest


GRID = BatchJob(
    "tridiag", 40,
    latencies=(1, 3, 8, 24, 64),
    queue_depths=(1, 2, 6, 12),
    bank_counts=(2, 8),
)


@pytest.fixture(scope="module")
def grid_results():
    jobs = GRID.expand()
    return jobs, run_batch(jobs)


@settings(max_examples=12, deadline=None)
@given(st.integers(min_value=0, max_value=39))
def test_grid_lane_subsample_matches_scalar(grid_results, lane):
    jobs, results = grid_results
    assert len(results) == len(jobs) == 40
    assert results[lane] == run_job(jobs[lane])


def test_run_jobs_batch_backend_matches_scalar_and_shares_cache(tmp_path):
    jobs = BatchJob(
        "daxpy", 24, latencies=(2, 8), queue_depths=(1, 4)
    ).expand()
    jobs.append(Job("vector", "daxpy", 24))  # ineligible: scalar remainder
    batch = run_jobs(jobs, cache_dir=tmp_path, backend="batch")
    assert batch == run_jobs(jobs)
    # batch-flushed entries serve a later scalar-backend sweep verbatim
    with harness_policy() as stats:
        assert run_jobs(jobs, cache_dir=tmp_path) == batch
    assert stats.hits == len(jobs)


def test_eligibility_gates():
    assert batch_eligible(Job("sma", "daxpy", 32))
    assert batch_eligible(Job("sma-nostream", "daxpy", 32))
    assert not batch_eligible(Job("vector", "daxpy", 32))
    multiport = SMAConfig(memory=MemoryConfig(accepts_per_cycle=2))
    assert not batch_eligible(Job("sma", "daxpy", 32, sma_config=multiport))
    wide = SMAConfig(stream_issue_per_cycle=2)
    assert not batch_eligible(Job("sma", "daxpy", 32, sma_config=wide))


def test_batchjob_expand_is_latency_major_with_builtin_ints():
    bj = BatchJob(
        "daxpy", np.int64(16),
        latencies=np.array([4, 1]), queue_depths=[2, 8], bank_counts=(8,),
    )
    assert bj.n == 16 and type(bj.n) is int
    assert bj.latencies == (4, 1)
    jobs = bj.expand()
    seen = [
        (j.sma_config.memory.latency, j.sma_config.queues.load_queue_depth)
        for j in jobs
    ]
    assert seen == [(4, 2), (4, 8), (1, 2), (1, 8)]
    assert all(type(lat) is int for lat, _depth in seen)
    with pytest.raises(ValueError, match="non-empty"):
        BatchJob("daxpy", 16, latencies=())
    with pytest.raises(ValueError, match="batch jobs target"):
        BatchJob("daxpy", 16, machine="vector")


@pytest.mark.parametrize("eid", ["R-T1", "R-F1"])
def test_batch_backend_reproduces_golden(eid):
    want = GOLDEN["tables"][eid]
    table = EXPERIMENTS[eid](backend="batch", **want["kwargs"])
    assert list(table.columns) == want["columns"]
    got_rows = json.loads(json.dumps([list(row) for row in table.rows]))
    assert got_rows == want["rows"], (
        f"{eid} through the batch backend diverged from the scalar "
        "golden numbers"
    )
