"""Checkpoint/restore (repro.core.checkpoint): snapshot fidelity.

The central property: a run interrupted at an arbitrary cycle,
snapshotted, restored into a *freshly built* machine, and run to
completion is indistinguishable — cycle count, memory image, stall
attribution, state digest — from the same run left uninterrupted.
"""

import json
from dataclasses import replace

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cli import main
from repro.config import MemoryConfig, QueueConfig, SMAConfig
from repro.core import SMAMachine, snapshot_digest
from repro.core.cluster import SMACluster
from repro.errors import CheckpointError
from repro.harness.runner import _fit_memory, _load_inputs
from repro.kernels import get_kernel, lower_sma


def _build(kernel_name="daxpy", n=48, latency=8, seed=12345,
           metrics=False):
    spec = get_kernel(kernel_name)
    kernel, inputs = spec.instantiate(n, seed)
    lowered = lower_sma(kernel)
    mem = MemoryConfig(latency=latency, bank_busy=max(1, latency // 2))
    cfg = SMAConfig(memory=_fit_memory(mem, lowered.layout),
                    queues=QueueConfig())
    machine = SMAMachine(lowered.access_program, lowered.execute_program,
                         cfg)
    _load_inputs(machine, lowered.layout, kernel, inputs)
    if metrics:
        machine.attach_metrics()
    return machine


def _build_cluster(n=24, latency=8):
    base = 16
    lowered = []
    for i, name in enumerate(("daxpy", "hydro")):
        kernel, inputs = get_kernel(name).instantiate(n, 100 + i)
        low = lower_sma(kernel, base=base)
        lowered.append((low, kernel, inputs))
        base = low.layout.end + 16
    mem = MemoryConfig(latency=latency, bank_busy=max(1, latency // 2),
                       size=base + 16)
    cluster = SMACluster(
        [(low.access_program, low.execute_program)
         for low, _, _ in lowered],
        SMAConfig(memory=mem, queues=QueueConfig()),
    )
    for low, kernel, inputs in lowered:
        for decl in kernel.arrays:
            cluster.load_array(low.layout.base(decl.name),
                               inputs[decl.name])
    return cluster


class TestDigest:
    def test_identical_machines_same_digest(self):
        assert _build().state_digest() == _build().state_digest()

    def test_digest_changes_as_state_advances(self):
        machine = _build()
        before = machine.state_digest()
        machine.step_cycles(5)
        assert machine.state_digest() != before

    def test_digest_is_over_canonical_snapshot(self):
        machine = _build()
        assert machine.state_digest() == snapshot_digest(machine.snapshot())


class TestMachineRoundTrip:
    @settings(max_examples=12, deadline=None)
    @given(
        kernel=st.sampled_from(["daxpy", "tridiag", "pic_gather"]),
        scheduler=st.sampled_from(list(SMAMachine.SCHEDULERS)),
        cut=st.integers(min_value=1, max_value=90),
        metrics=st.booleans(),
    )
    def test_resume_matches_uninterrupted(self, kernel, scheduler, cut,
                                          metrics):
        straight = _build(kernel, n=32, metrics=metrics)
        want = straight.run(scheduler=scheduler)

        source = _build(kernel, n=32, metrics=metrics)
        source.step_cycles(cut)
        snap = source.snapshot()
        # the snapshot itself must survive a JSON round-trip unchanged
        snap = json.loads(json.dumps(snap))

        resumed = _build(kernel, n=32, metrics=metrics)
        resumed.restore(snap)
        assert resumed.state_digest() == source.state_digest()
        got = resumed.run(scheduler=scheduler)

        assert got.cycles == want.cycles
        assert np.array_equal(resumed.memory._words,
                              straight.memory._words)
        assert got.stall_breakdown == want.stall_breakdown
        assert resumed.state_digest() == straight.state_digest()

    def test_snapshot_does_not_perturb_the_run(self):
        plain = _build()
        observed = _build()
        observed.step_cycles(17)
        observed.snapshot()
        observed.step_cycles(17)
        observed.snapshot()
        want = plain.run()
        got = observed.run()
        assert got.cycles == want.cycles
        assert plain.state_digest() == observed.state_digest()

    def test_step_cycles_stops_at_done(self):
        machine = _build(n=16)
        stepped = machine.step_cycles(10 ** 9)
        assert machine.done() and stepped < 10 ** 9
        assert machine.step_cycles(10) == 0


class TestRestoreRejects:
    def test_mismatched_program(self):
        snap = _build("daxpy").snapshot()
        with pytest.raises(CheckpointError, match="fingerprint"):
            _build("hydro").restore(snap)

    def test_mismatched_config(self):
        snap = _build(latency=8).snapshot()
        with pytest.raises(CheckpointError, match="fingerprint"):
            _build(latency=16).restore(snap)

    def test_bad_version(self):
        machine = _build()
        snap = machine.snapshot()
        snap["version"] = 999
        with pytest.raises(CheckpointError, match="version"):
            machine.restore(snap)

    def test_wrong_kind(self):
        machine = _build()
        snap = machine.snapshot()
        with pytest.raises(CheckpointError, match="cluster snapshot"):
            _build_cluster().restore(snap)


class TestClusterRoundTrip:
    def test_resume_matches_uninterrupted(self):
        straight = _build_cluster()
        want = straight.run()

        source = _build_cluster()
        source.step_cycles(40)
        snap = json.loads(json.dumps(source.snapshot()))

        resumed = _build_cluster()
        resumed.restore(snap)
        assert resumed.state_digest() == source.state_digest()
        got = resumed.run()

        assert got.cycles == want.cycles
        assert got.finish_cycles == want.finish_cycles
        assert np.array_equal(resumed.memory._words,
                              straight.memory._words)
        assert resumed.state_digest() == straight.state_digest()


class TestCheckpointCLI:
    def test_save_then_load_round_trip(self, tmp_path, capsys):
        out = tmp_path / "ck.json"
        assert main(["checkpoint", "save", "daxpy", "--n", "32",
                     "--cycles", "30", "--out", str(out)]) == 0
        saved = capsys.readouterr().out
        assert "digest" in saved
        payload = json.loads(out.read_text())
        assert payload["kernel"] == "daxpy"
        assert payload["digest"] == snapshot_digest(payload["snapshot"])

        assert main(["checkpoint", "load", str(out)]) == 0
        loaded = capsys.readouterr().out
        assert "(verified)" in loaded
        assert "ran to completion" in loaded

    def test_load_rejects_garbage(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert main(["checkpoint", "load", str(bad)]) == 2

    def test_load_rejects_wrong_machine(self, tmp_path, capsys):
        out = tmp_path / "ck.json"
        assert main(["checkpoint", "save", "daxpy", "--n", "32",
                     "--cycles", "10", "--out", str(out)]) == 0
        capsys.readouterr()
        payload = json.loads(out.read_text())
        payload["kernel"] = "hydro"  # snapshot no longer matches
        out.write_text(json.dumps(payload))
        assert main(["checkpoint", "load", str(out)]) == 2
        assert "rejected" in capsys.readouterr().err
