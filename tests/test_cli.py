"""CLI and ASCII plotting."""

import pytest

from repro.cli import main
from repro.harness.plot import render_plot
from repro.harness.tables import Table


class TestPlot:
    def _table(self):
        t = Table("R-F9", "demo figure", ("x", "alpha", "beta"))
        t.add_row(1, 1.0, 2.0)
        t.add_row(2, 2.0, 4.0)
        t.add_row(4, 4.0, 8.0)
        return t

    def test_renders_axes_and_legend(self):
        art = render_plot(self._table())
        assert "A=alpha" in art and "B=beta" in art
        assert "R-F9" in art
        assert "8" in art and "1" in art  # y range labels

    def test_series_extremes_plotted(self):
        art = render_plot(self._table(), width=30, height=8)
        lines = art.splitlines()
        top = next(l for l in lines if "|" in l)
        assert "B" in top  # max value (8.0) on the top row

    def test_needs_data(self):
        with pytest.raises(ValueError):
            render_plot(Table("X", "t", ("x", "y")))

    def test_logx(self):
        art = render_plot(self._table(), logx=True)
        assert "alpha" in art

    def test_logx_rejects_nonpositive(self):
        t = Table("X", "t", ("x", "y"))
        t.add_row(0, 1.0)
        t.add_row(1, 2.0)
        with pytest.raises(ValueError, match="positive"):
            render_plot(t, logx=True)


class TestCLI:
    def test_kernels(self, capsys):
        assert main(["kernels"]) == 0
        out = capsys.readouterr().out
        assert "hydro" in out and "tridiag" in out

    def test_run(self, capsys):
        assert main(["run", "daxpy", "--n", "32"]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out and "verified" in out

    def test_compile(self, capsys):
        assert main(["compile", "daxpy", "--n", "8"]) == 0
        out = capsys.readouterr().out
        assert "streamld" in out and "decbnz" in out

    def test_experiment_with_plot(self, capsys, monkeypatch):
        # shrink the sweep so the test stays fast
        from repro.harness import experiments as exp
        monkeypatch.setitem(
            exp.EXPERIMENTS, "R-F1",
            lambda: exp.fig1_latency(n=32, latencies=(2, 8),
                                     kernels=("daxpy",)),
        )
        assert main(["experiment", "R-F1", "--plot"]) == 0
        out = capsys.readouterr().out
        assert "R-F1" in out and "A=daxpy" in out

    def test_experiment_unknown(self, capsys):
        assert main(["experiment", "R-T99"]) == 2

    def test_experiment_id_spelling_normalized(self, capsys, monkeypatch):
        """rf8 / r-f8 / R-F8 all select the same experiment."""
        from repro.harness import experiments as exp
        monkeypatch.setitem(
            exp.EXPERIMENTS, "R-F8",
            lambda: exp.fig8_multiprocessor(
                n=16, node_counts=(1,), ports=(1,)
            ),
        )
        for spelling in ("rf8", "r-f8", "R-F8", "r_f8"):
            assert main(["experiment", spelling]) == 0
            out = capsys.readouterr().out
            assert "R-F8" in out

    def test_parse(self, tmp_path, capsys):
        source = """
kernel scale(x[n], y[n]):
    for i in 0 .. n:
        y[i] = 2.0 * x[i]
"""
        path = tmp_path / "scale.k"
        path.write_text(source)
        assert main(["parse", str(path), "--n", "16"]) == 0
        out = capsys.readouterr().out
        assert "verified on both machines" in out

    def test_timeline(self, capsys):
        assert main(["timeline", "daxpy", "--n", "8", "--last", "12"]) == 0
        out = capsys.readouterr().out
        assert "access processor" in out and "streamld" in out

    def test_profile(self, capsys):
        assert main(["profile", "daxpy", "--n", "16", "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "scheduler=event-horizon" in out
        assert "component" in out
        assert "stream engine" in out
        assert "hottest 3 function(s)" in out

    def test_profile_scheduler_choice(self, capsys):
        assert main(["profile", "daxpy", "--n", "16",
                     "--scheduler", "naive"]) == 0
        out = capsys.readouterr().out
        assert "scheduler=naive" in out
        # without --top the per-function listing is omitted
        assert "hottest" not in out

    def test_profile_attribution_groups_by_source_file(self):
        from repro.cli import profile_attribution

        class FakeStats:
            stats = {
                ("/x/src/repro/core/access_processor.py", 1, "step"):
                    (1, 1, 0.25, 0.25, {}),
                ("/x/src/repro/queues/operand_queue.py", 2, "pop"):
                    (1, 1, 0.5, 0.5, {}),
                ("/x/src/repro/queues/queue_file.py", 3, "sample"):
                    (1, 1, 0.25, 0.25, {}),
                ("/usr/lib/python3/heapq.py", 4, "heappop"):
                    (1, 1, 1.0, 1.0, {}),
            }

        totals = profile_attribution(FakeStats())
        assert totals["access processor"] == 0.25
        assert totals["operand queues"] == 0.75
        assert totals["other"] == 1.0

    def test_experiment_csv(self, capsys, monkeypatch):
        from repro.harness import experiments as exp
        monkeypatch.setitem(
            exp.EXPERIMENTS, "R-F2",
            lambda: exp.fig2_queue_depth(n=16, depths=(2, 4),
                                         kernels=("daxpy",)),
        )
        assert main(["experiment", "R-F2", "--csv"]) == 0
        out = capsys.readouterr().out
        assert "depth,daxpy" in out
        assert out.startswith("# [R-F2]")

    def test_verify(self, capsys):
        assert main(["verify", "tridiag", "--n", "24"]) == 0
        out = capsys.readouterr().out
        assert out.count("match sequential semantics") == 3

    def test_verify_single_machine(self, capsys):
        assert main(["verify", "daxpy", "--n", "16",
                     "--machine", "scalar"]) == 0
        out = capsys.readouterr().out
        assert "scalar:" in out and "sma:" not in out

    def test_parse_mismatch_would_fail_loudly(self, tmp_path):
        # sanity: garbage source errors before any run
        path = tmp_path / "bad.k"
        path.write_text("kernel k(x[4]):\n    for i in 0 .. 4:\n        x[i] = @")
        with pytest.raises(Exception):
            main(["parse", str(path)])
