"""SMA multiprocessor cluster: correctness under contention, fairness,
interference accounting."""

import numpy as np
import pytest

from repro.config import MemoryConfig, SMAConfig
from repro.core import SMACluster
from repro.errors import SimulationError
from repro.isa import assemble
from repro.kernels import get_kernel, run_reference
from repro.harness.runner import run_cluster


def _copy_node(src_base: int, dst_base: int, n: int):
    ap = assemble(f"""
        streamld lq0, #{src_base}, #1, #{n}
        streamst sdq0, #{dst_base}, #1, #{n}
        halt
    """)
    ep = assemble(f"""
        mov x1, #{n}
        t: add sdq0, lq0, #1.0
        decbnz x1, t
        halt
    """)
    return ap, ep


class TestClusterBasics:
    def test_two_nodes_disjoint_regions(self):
        cfg = SMAConfig(memory=MemoryConfig(size=4096))
        cluster = SMACluster(
            [_copy_node(100, 300, 16), _copy_node(500, 700, 16)], cfg
        )
        cluster.load_array(100, [1.0] * 16)
        cluster.load_array(500, [10.0] * 16)
        result = cluster.run()
        assert cluster.dump_array(300, 16).tolist() == [2.0] * 16
        assert cluster.dump_array(700, 16).tolist() == [11.0] * 16
        assert len(result.nodes) == 2
        assert result.cycles >= max(n.cycles for n in result.nodes)

    def test_empty_cluster_rejected(self):
        with pytest.raises(ValueError):
            SMACluster([])

    def test_finish_cycles_recorded(self):
        cfg = SMAConfig(memory=MemoryConfig(size=4096))
        cluster = SMACluster(
            [_copy_node(100, 300, 4), _copy_node(500, 700, 64)], cfg
        )
        cluster.load_array(100, [1.0] * 4)
        cluster.load_array(500, [1.0] * 64)
        cluster.run()
        short, long = cluster.finish_cycles
        assert short < long

    def test_deadlock_detection(self):
        ap = assemble("halt")
        ep = assemble("mov x1, lq0\nhalt")
        cluster = SMACluster([(ap, ep)], SMAConfig())
        with pytest.raises(SimulationError, match="cluster deadlock"):
            cluster.run(deadlock_window=100)

    def test_summary(self):
        cfg = SMAConfig(memory=MemoryConfig(size=2048))
        cluster = SMACluster([_copy_node(100, 300, 8)], cfg)
        cluster.load_array(100, [1.0] * 8)
        result = cluster.run()
        assert "node 0" in result.summary()


class TestInterference:
    def test_results_identical_under_contention(self):
        """Contention may change timing, never values."""
        jobs = [
            get_kernel("hydro").instantiate(64, seed=1),
            get_kernel("tridiag").instantiate(64, seed=2),
            get_kernel("pic_gather").instantiate(64, seed=3),
        ]
        result = run_cluster(jobs)  # check=True verifies vs reference
        assert len(result.outputs) == 3

    def test_single_node_cluster_matches_standalone(self):
        jobs = [get_kernel("daxpy").instantiate(64)]
        result = run_cluster(jobs)
        assert result.node_cycles[0] == result.standalone_cycles[0]
        assert result.interference_slowdowns[0] == 1.0

    def test_port_contention_slows_nodes(self):
        cfg = SMAConfig(
            memory=MemoryConfig(num_banks=16, accepts_per_cycle=1)
        )
        jobs = [
            get_kernel("daxpy").instantiate(96, seed=5),
            get_kernel("daxpy").instantiate(96, seed=6),
        ]
        result = run_cluster(jobs, cfg)
        assert all(s > 1.3 for s in result.interference_slowdowns)

    def test_wider_port_restores_performance(self):
        jobs = [
            get_kernel("daxpy").instantiate(96, seed=5),
            get_kernel("daxpy").instantiate(96, seed=6),
        ]
        narrow = run_cluster(jobs, SMAConfig(
            memory=MemoryConfig(num_banks=16, accepts_per_cycle=1)
        ))
        wide = run_cluster(jobs, SMAConfig(
            memory=MemoryConfig(num_banks=16, accepts_per_cycle=2)
        ))
        assert sum(wide.node_cycles) < sum(narrow.node_cycles)

    def test_rotation_fairness(self):
        """Two identical nodes must finish within a few cycles of each
        other — the rotating service order gives neither a standing
        priority at the memory port."""
        jobs = [
            get_kernel("scale_shift").instantiate(96, seed=9),
            get_kernel("scale_shift").instantiate(96, seed=9),
        ]
        result = run_cluster(jobs)
        a, b = result.node_cycles
        assert abs(a - b) <= 0.05 * max(a, b)
