"""Cluster fast-forward equivalence and the R-F8 accounting fixes.

The central property mirrors ``tests/test_fast_forward.py`` one level up:
an :class:`repro.core.SMACluster` run with ``fast_forward=True`` must be
indistinguishable from naive cycle-by-cycle ticking — cluster cycles,
per-node finish cycles, every per-node statistic (stall counters, queue
histograms, LOD accounting), per-node metrics bucket partitions, shared
memory contention counters, and the final memory image.

Alongside it: regression tests for the finish-cycle recording contract
(``finish_cycles[i] == nodes[i].cycles``, exact under fast-forward), the
``Job.seed`` plumbing in the cluster job runner, and the timeline
recorder's per-cycle stall attribution.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import MemoryConfig, QueueConfig, SMAConfig
from repro.core import SMACluster
from repro.harness.jobs import Job, run_job
from repro.harness.runner import run_cluster
from repro.kernels import get_kernel, lower_sma

#: suite kernels with structurally diverse access patterns
MIX_KERNELS = ("daxpy", "hydro", "tridiag", "computed_gather", "pic_gather")


def _build_cluster(specs, latency, depth, banks, ports=1):
    """Lower each (kernel, inputs) at a disjoint base and stage data."""
    lowered = []
    base = 16
    for kernel, _inputs in specs:
        low = lower_sma(kernel, base=base)
        lowered.append(low)
        base = low.layout.end + 16
    queues = QueueConfig(
        load_queue_depth=depth,
        store_data_depth=depth,
        store_addr_depth=depth,
        index_queue_depth=depth,
    )
    mem = MemoryConfig(
        latency=latency,
        bank_busy=max(1, latency // 2),
        num_banks=banks,
        accepts_per_cycle=ports,
        size=max(MemoryConfig().size, base + 16),
    )
    cluster = SMACluster(
        [(low.access_program, low.execute_program) for low in lowered],
        SMAConfig(memory=mem, queues=queues),
    )
    for (kernel, inputs), low in zip(specs, lowered):
        for decl in kernel.arrays:
            cluster.load_array(low.layout.base(decl.name), inputs[decl.name])
    return cluster


def _node_observables(machine, result):
    return {
        "cycle": machine.cycle,
        "result": result.to_dict(),
        "occupancy_sum": machine._occupancy_sum,
        "occupancy_max": machine._occupancy_max,
        "queues": {
            name: (
                stats.pushes, stats.pops, stats.empty_stalls,
                stats.full_stalls, stats.samples, stats.occupancy_sum,
                stats.occupancy_max, dict(stats.histogram),
            )
            for name, stats in result.queue_stats.items()
        },
    }


def _observables(cluster, result, metrics):
    return {
        "cycles": result.cycles,
        "finish_cycles": list(result.finish_cycles),
        "nodes": [
            _node_observables(machine, node)
            for machine, node in zip(cluster.nodes, result.nodes)
        ],
        "buckets": [m.stall_breakdown() for m in metrics],
        "memory": {
            "reads": cluster.banked.stats.reads,
            "writes": cluster.banked.stats.writes,
            "bank_conflicts": result.bank_conflicts,
            "port_rejects": result.port_rejects,
            "busy_bank_cycles": cluster.banked.stats.busy_bank_cycles,
            "completions": cluster.banked.stats.completions,
            "per_bank": list(cluster.banked.stats.per_bank_accesses),
            "utilization": result.memory_utilization,
        },
        "image": cluster.memory.dump_array(
            0, cluster.config.memory.size
        ).tolist(),
    }


def _run_both_modes(specs, latency, depth, banks, ports=1):
    observed = []
    for fast in (False, True):
        cluster = _build_cluster(specs, latency, depth, banks, ports)
        metrics = cluster.attach_metrics()
        result = cluster.run(fast_forward=fast)
        observed.append(_observables(cluster, result, metrics))
    naive, fast = observed
    assert naive == fast
    return naive


@settings(max_examples=25, deadline=None)
@given(
    st.lists(st.sampled_from(MIX_KERNELS), min_size=1, max_size=4),
    st.sampled_from((8, 16, 32, 64)),     # latency
    st.sampled_from((2, 4, 16)),          # queue depth
    st.sampled_from((2, 8, 16)),          # banks
    st.sampled_from((1, 2)),              # port width
    st.integers(0, 2**31),                # input seed
)
def test_cluster_fast_forward_identical_on_random_mixes(
    names, latency, depth, banks, ports, seed
):
    specs = [
        get_kernel(name).instantiate(24, seed + j)
        for j, name in enumerate(names)
    ]
    observed = _run_both_modes(specs, latency, depth, banks, ports)
    # the metrics buckets partition each node's own cycle count
    for node, buckets in zip(observed["nodes"], observed["buckets"]):
        assert sum(buckets.values()) == node["cycle"]


@pytest.mark.parametrize("nodes", (1, 2, 4))
@pytest.mark.parametrize("latency", (16, 64))
def test_cluster_fast_forward_identical_on_daxpy_grid(nodes, latency):
    spec = get_kernel("daxpy")
    specs = [spec.instantiate(48, 7 + j) for j in range(nodes)]
    _run_both_modes(specs, latency, depth=8, banks=16)


# ---------------------------------------------------------------------------
# finish-cycle recording (satellite: off-by-one fix)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("fast", (False, True))
def test_finish_cycles_equal_node_cycle_counts(fast):
    """A node's recorded finish cycle is its own elapsed cycle count —
    recorded the moment it transitions to done, not on a later visit
    (which under fast-forward could be a whole clock jump late)."""
    specs = [
        get_kernel("daxpy").instantiate(16, 1),      # finishes early
        get_kernel("hydro").instantiate(96, 2),      # keeps running
    ]
    cluster = _build_cluster(specs, latency=64, depth=4, banks=8)
    result = cluster.run(fast_forward=fast)
    assert result.finish_cycles == [n.cycles for n in result.nodes]
    assert result.finish_cycles[0] < result.finish_cycles[1]


def test_finish_cycles_match_between_modes():
    specs = [
        get_kernel("daxpy").instantiate(16, 1),
        get_kernel("tridiag").instantiate(64, 2),
        get_kernel("daxpy").instantiate(96, 3),
    ]
    finishes = []
    for fast in (False, True):
        cluster = _build_cluster(specs, latency=128, depth=4, banks=8)
        finishes.append(cluster.run(fast_forward=fast).finish_cycles)
    assert finishes[0] == finishes[1]


# ---------------------------------------------------------------------------
# Job.seed plumbing (satellite: cluster jobs ignored the seed)
# ---------------------------------------------------------------------------


class TestClusterJobSeed:
    CFG = SMAConfig(
        memory=MemoryConfig(latency=8, bank_busy=4, num_banks=8)
    )

    def test_node_seeds_derive_from_job_seed(self):
        """run_job must measure the same workloads as a direct
        run_cluster with seeds job.seed + j."""
        job = run_job(Job(
            "cluster", "computed_gather", 48, seed=7,
            sma_config=self.CFG, nodes=2,
        ))
        spec = get_kernel("computed_gather")
        direct = run_cluster(
            [spec.instantiate(48, 7 + j) for j in range(2)], self.CFG
        )
        assert job["cluster_cycles"] == direct.cluster_cycles
        assert job["node_cycles"] == direct.node_cycles

    def test_jobs_differing_only_in_seed_differ(self):
        """computed_gather's access pattern is seed-dependent, so two
        cluster jobs differing only in seed must not return identical
        measurements (they used to: node seeds were hard-coded)."""
        results = [
            run_job(Job(
                "cluster", "computed_gather", 48, seed=seed,
                sma_config=self.CFG, nodes=2,
            ))
            for seed in (7, 100)
        ]
        assert results[0] != results[1]


# ---------------------------------------------------------------------------
# run_cluster metrics mode: per-node RunReports + contention section
# ---------------------------------------------------------------------------


def test_run_cluster_emits_per_node_reports_and_contention():
    from repro.metrics import validate_report

    specs = [
        get_kernel("daxpy").instantiate(48, 5),
        get_kernel("hydro").instantiate(48, 6),
    ]
    result = run_cluster(
        specs,
        SMAConfig(memory=MemoryConfig(num_banks=16)),
        metrics=True,
    )
    assert [r.machine for r in result.reports] == ["sma-node0", "sma-node1"]
    assert [r.kernel for r in result.reports] == ["daxpy", "hydro"]
    for report, cycles in zip(result.reports, result.node_cycles):
        assert not validate_report(report.to_dict())
        assert report.cycles == cycles
        assert sum(report.stall_breakdown.values()) == cycles
    for key in ("bank_conflicts", "port_rejects", "memory_utilization",
                "completions"):
        assert key in result.contention
    assert result.contention["bank_conflicts"] == result.bank_conflicts


def test_run_cluster_without_metrics_has_no_reports():
    specs = [get_kernel("daxpy").instantiate(32, 5)]
    result = run_cluster(specs)
    assert result.reports == []
    assert result.contention == {}


# ---------------------------------------------------------------------------
# timeline per-cycle stall attribution (satellite: dominant-cause bug)
# ---------------------------------------------------------------------------


class _StubStats:
    def __init__(self):
        self.instructions = 0
        self.stall_cycles: dict[str, int] = {}


class _StubProcessor:
    """Just enough surface for TimelineRecorder; deliberately has no
    ``_stalled_on`` attribute, the situation that used to route the
    recorder into its dominant-cause fallback."""

    def __init__(self):
        self.pc = 0
        self.halted = False
        self.program = []
        self.stats = _StubStats()


class _StubMachine:
    def __init__(self):
        self.ap = _StubProcessor()
        self.ep = _StubProcessor()

        class _Counter:
            def __init__(self):
                self.stats = _StubStats()

        self.engine = _Counter()
        self.engine.stats.requests_issued = 0
        self.store_unit = _Counter()
        self.store_unit.stats.stores_issued = 0


class TestTimelineStallAttribution:
    def test_cycle_shows_its_own_cause_not_the_dominant_one(self):
        """A cycle stalled on lq_empty must render ~lq_empty even when
        q_full dominates the cumulative counters."""
        from repro.trace import TimelineRecorder

        machine = _StubMachine()
        recorder = TimelineRecorder()
        for cycle in range(5):
            machine.ep.stats.stall_cycles["q_full"] = cycle + 1
            recorder(machine, cycle)
        machine.ep.stats.stall_cycles["lq_empty"] = 1
        recorder(machine, 5)
        events = [r.ep_event for r in recorder.records]
        assert events[:5] == ["~q_full"] * 5
        assert events[5] == "~lq_empty"

    def test_real_run_events_match_counter_deltas(self):
        """On a real machine every rendered stall cause must be the one
        whose counter incremented that exact cycle."""
        from repro.config import SMAConfig
        from repro.core import SMAMachine
        from repro.isa import assemble
        from repro.trace import TimelineRecorder

        ap = assemble(
            "streamld lq0, #50, #1, #8\nstreamst sdq0, #80, #1, #8\nhalt"
        )
        ep = assemble(
            "mov x1, #8\nt: add sdq0, lq0, #1.0\ndecbnz x1, t\nhalt"
        )
        machine = SMAMachine(ap, ep, SMAConfig())
        machine.load_array(50, [1.0] * 8)
        recorder = TimelineRecorder()
        expected: list[str | None] = []
        prev: dict[str, int] = {}

        def observer(m, cycle):
            nonlocal prev
            stalls = dict(m.ep.stats.stall_cycles)
            cause = None
            for name, value in stalls.items():
                if value > prev.get(name, 0):
                    cause = name
            expected.append(cause)
            prev = stalls
            recorder(m, cycle)

        machine.run(observer=observer)
        assert any(expected)  # the run must actually contain EP stalls
        for record, cause in zip(recorder.records, expected):
            if cause is not None:
                assert record.ep_event == f"~{cause}"
            else:
                assert not record.ep_event.startswith("~")
