"""Codegen backend unit tests (repro.codegen) beyond bit-identity.

The scheduler-equivalence property tests live in
``tests/test_event_horizon.py``; this module pins the machinery around
the compiled artifacts: cache keying and invalidation (program, config,
simulator-source fingerprint, LRU bound, the negative cache for
unspecializable programs), the fault-injection downgrade to naive
ticking, the quiescent-entry guard that routes restored snapshots and
resumed budget aborts through the interpreted event-horizon loop,
deterministic emission, the scheduler registry, and the ``repro
codegen`` CLI surface.
"""

import pytest

from repro.codegen import (
    cached_artifacts,
    clear_cache,
    compiled_loop_for,
    compiled_step_for,
    stats,
)
from repro.codegen import cache as codegen_cache
from repro.codegen.emitter import MachineLoopEmitter, Unsupported
from repro.config import (
    FaultConfig,
    MemoryConfig,
    QueueConfig,
    SMAConfig,
)
from repro.core import SMAMachine
from repro.errors import SimulationError
from repro.harness.runner import _fit_memory, _load_inputs
from repro.kernels import get_kernel, lower_sma

from tests.test_event_horizon import _full_observables
from tests.test_fast_forward import _machine


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_cache()
    yield
    clear_cache()


def _kernel(name="daxpy", n=24, seed=0):
    return get_kernel(name).instantiate(n, seed)


def _build(name="daxpy", n=24, latency=8, depth=4, banks=8, seed=0):
    kernel, inputs = _kernel(name, n, seed)
    return _machine(kernel, inputs, latency, depth, banks)


def _faulted_machine(latency=8, **faults):
    """Like ``_machine`` but with transient memory faults injected."""
    kernel, inputs = _kernel()
    lowered = lower_sma(kernel)
    mem = MemoryConfig(latency=latency, bank_busy=max(1, latency // 2))
    cfg = SMAConfig(
        memory=_fit_memory(mem, lowered.layout),
        queues=QueueConfig(),
        faults=FaultConfig(**faults) if faults else None,
    )
    machine = SMAMachine(
        lowered.access_program, lowered.execute_program, cfg
    )
    _load_inputs(machine, lowered.layout, kernel, inputs)
    return machine


# ---------------------------------------------------------------------------
# cache keying and invalidation
# ---------------------------------------------------------------------------


class TestCacheKeying:
    def test_same_program_and_config_hit(self):
        first = compiled_loop_for(_build())
        second = compiled_loop_for(_build())
        assert first is second
        assert stats.compiles == 1
        assert (stats.hits, stats.misses) == (1, 1)

    def test_input_values_do_not_key(self):
        # the emitter specializes on programs and config, never on
        # memory contents — different inputs must share the artifact
        assert compiled_loop_for(_build(seed=1)) is \
            compiled_loop_for(_build(seed=2))

    def test_config_change_recompiles(self):
        first = compiled_loop_for(_build(latency=8))
        second = compiled_loop_for(_build(latency=16))
        assert first is not second
        assert first.key != second.key
        assert stats.compiles == 2

    def test_program_change_recompiles(self):
        assert compiled_loop_for(_build("daxpy")).key != \
            compiled_loop_for(_build("hydro")).key

    def test_kind_is_part_of_the_key(self):
        loop = compiled_loop_for(_build())
        step = compiled_step_for(_build())
        assert loop.key != step.key
        assert loop.fn is not step.fn

    def test_source_edit_invalidates(self, monkeypatch):
        first = compiled_loop_for(_build())
        monkeypatch.setattr(
            codegen_cache, "_code_fingerprint", lambda: "edited-sources"
        )
        second = compiled_loop_for(_build())
        assert first is not second
        assert stats.compiles == 2

    def test_lru_eviction(self, monkeypatch):
        monkeypatch.setattr(codegen_cache, "MAX_ENTRIES", 2)
        for latency in (4, 8, 16):
            compiled_loop_for(_build(latency=latency))
        assert stats.evictions == 1
        assert len(cached_artifacts()) == 2
        # the evictee was the least recently used: latency=4 recompiles
        compiled_loop_for(_build(latency=16))
        assert stats.compiles == 3
        compiled_loop_for(_build(latency=4))
        assert stats.compiles == 4

    def test_unsupported_program_negative_cached(self, monkeypatch):
        def boom(self):
            raise Unsupported("exotic operand")

        monkeypatch.setattr(MachineLoopEmitter, "generate", boom)
        assert compiled_loop_for(_build()) is None
        assert compiled_loop_for(_build()) is None
        # second lookup short-circuits on the negative cache: one
        # emission attempt, one recorded miss
        assert stats.unsupported == 1
        assert stats.misses == 1

    def test_emission_is_deterministic(self):
        a = MachineLoopEmitter(_build()).generate()
        b = MachineLoopEmitter(_build()).generate()
        assert a == b


# ---------------------------------------------------------------------------
# downgrades and fallbacks
# ---------------------------------------------------------------------------


class TestFallbacks:
    def test_fault_injection_downgrades_to_naive(self):
        faulted = _faulted_machine(reject_prob=0.2, seed=7)
        got = faulted.run(scheduler="codegen")
        reference = _faulted_machine(reject_prob=0.2, seed=7)
        want = reference.run(scheduler="naive")
        assert _full_observables(faulted, got) == \
            _full_observables(reference, want)
        # the downgrade happens before artifact lookup: nothing compiled
        assert stats.compiles == 0

    def test_resumed_budget_abort_stays_bit_identical(self):
        reference = _build()
        want = reference.run(scheduler="naive")

        machine = _build()
        with pytest.raises(SimulationError, match="cycle budget"):
            machine.run(max_cycles=want.cycles // 2,
                        scheduler="event-horizon")
        # mid-flight state (live streams / in-flight completions) makes
        # the quiescent-entry guard route this through the interpreted
        # event-horizon loop — still bit-identical
        got = machine.run(scheduler="codegen")
        assert _full_observables(machine, got) == \
            _full_observables(reference, want)

    def test_restored_snapshot_stays_bit_identical(self):
        reference = _build()
        want = reference.run(scheduler="naive")

        donor = _build()
        with pytest.raises(SimulationError, match="cycle budget"):
            donor.run(max_cycles=want.cycles // 2,
                      scheduler="naive")
        machine = _build()
        machine.restore(donor.snapshot())
        got = machine.run(scheduler="codegen")
        assert _full_observables(machine, got) == \
            _full_observables(reference, want)

    def test_codegen_runs_compiled_loop_when_quiescent(self):
        machine = _build()
        machine.run(scheduler="codegen")
        assert stats.compiles == 1
        assert cached_artifacts()[0].kind == "loop"


# ---------------------------------------------------------------------------
# registry and cluster wiring
# ---------------------------------------------------------------------------


class TestRegistry:
    def test_four_registered_schedulers(self):
        assert list(SMAMachine.SCHEDULERS) == [
            "naive", "joint-idle", "event-horizon", "codegen"
        ]
        for name, entry in SMAMachine.SCHEDULERS.items():
            assert callable(entry), name

    def test_unknown_scheduler_rejected(self):
        with pytest.raises(ValueError, match="unknown scheduler"):
            _build().run(scheduler="jit")

    def test_cluster_observer_disables_steppers(self):
        from tests.test_cluster_fast_forward import _build_cluster

        specs = [_kernel("daxpy", 16), _kernel("hydro", 16)]
        cluster = _build_cluster(specs, latency=8, depth=4, banks=8)
        assert cluster._compiled_steppers() is not None
        cluster.memory.observer = lambda *a: None
        assert cluster._compiled_steppers() is None


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------


class TestCli:
    def test_codegen_show_prints_loop_source(self, capsys):
        from repro.cli import main

        assert main(["codegen", "show", "daxpy", "--n", "16"]) == 0
        out = capsys.readouterr().out
        assert "__sma_codegen_loop__" in out
        assert "# specialized for access program" in out

    def test_codegen_show_step_kind(self, capsys):
        from repro.cli import main

        assert main(["codegen", "show", "daxpy", "--n", "16",
                     "--kind", "step"]) == 0
        assert "__sma_codegen_step__" in capsys.readouterr().out

    def test_codegen_list_reports_cache(self, capsys):
        from repro.cli import main

        compiled_loop_for(_build())
        assert main(["codegen", "list"]) == 0
        out = capsys.readouterr().out
        assert "loop" in out and "compiles 1" in out
