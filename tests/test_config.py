"""Configuration dataclass validation."""

import pytest

from repro.config import (
    CacheConfig,
    MemoryConfig,
    QueueConfig,
    ScalarConfig,
    SMAConfig,
    default_scalar_config,
    default_sma_config,
)


class TestMemoryConfig:
    def test_defaults_consistent(self):
        cfg = MemoryConfig()
        assert cfg.latency >= cfg.bank_busy

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"size": 0},
            {"num_banks": 0},
            {"latency": 0},
            {"bank_busy": 0},
            {"accepts_per_cycle": 0},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            MemoryConfig(**kwargs)

    def test_frozen(self):
        with pytest.raises(Exception):
            MemoryConfig().latency = 3


class TestQueueConfig:
    def test_rejects_zero_depths(self):
        with pytest.raises(ValueError):
            QueueConfig(load_queue_depth=0)


class TestSMAConfig:
    def test_rejects_zero_streams(self):
        with pytest.raises(ValueError):
            SMAConfig(max_streams=0)

    def test_default_streams_cover_queue_complement(self):
        cfg = SMAConfig()
        assert cfg.max_streams >= (
            cfg.num_load_queues + cfg.num_store_queues + cfg.num_index_queues
        )

    def test_helper_overrides(self):
        assert default_sma_config(max_streams=20).max_streams == 20
        assert default_scalar_config().cache is None


class TestCacheConfig:
    def test_bad_hit_time(self):
        with pytest.raises(ValueError):
            CacheConfig(hit_time=0)
