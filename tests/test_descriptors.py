"""Stream descriptors and the stream engine."""

import pytest

from repro.config import MemoryConfig
from repro.core import StreamDescriptor, StreamEngine, StreamKind
from repro.errors import SimulationError
from repro.memory import BankedMemory, MainMemory
from repro.queues import OperandQueue


def make_memory(latency=2, banks=8, busy=1, accepts=4):
    cfg = MemoryConfig(size=256, num_banks=banks, latency=latency,
                       bank_busy=busy, accepts_per_cycle=accepts)
    return BankedMemory(MainMemory(256), cfg)


def drain(engine, mem, queue, count, max_cycles=500):
    """Run the engine+memory until `count` values popped from `queue`."""
    got = []
    for t in range(max_cycles):
        mem.tick(t)
        engine.tick(t)
        while queue.head_ready() and len(got) < count:
            got.append(queue.pop())
        if len(got) == count:
            return got
    raise AssertionError(f"only drained {len(got)}/{count}")


class TestDescriptorValidation:
    def test_load_needs_target(self):
        with pytest.raises(SimulationError):
            StreamDescriptor(StreamKind.LOAD, base=0, count=4)

    def test_store_needs_data_queue(self):
        with pytest.raises(SimulationError):
            StreamDescriptor(StreamKind.STORE, base=0, count=4)

    def test_gather_needs_index_queue(self):
        with pytest.raises(SimulationError):
            StreamDescriptor(
                StreamKind.GATHER, base=0, count=4,
                target=OperandQueue("q", 4),
            )

    def test_negative_count(self):
        with pytest.raises(SimulationError):
            StreamDescriptor(
                StreamKind.LOAD, base=0, count=-1,
                target=OperandQueue("q", 4),
            )


class TestLoadStream:
    def test_unit_stride_values_in_order(self):
        mem = make_memory()
        mem.storage.load_array(10, [1.0, 2.0, 3.0, 4.0])
        q = OperandQueue("lq0", 8)
        engine = StreamEngine(mem, max_streams=2)
        engine.start(StreamDescriptor(StreamKind.LOAD, 10, 4, 1, target=q))
        assert drain(engine, mem, q, 4) == [1.0, 2.0, 3.0, 4.0]
        assert engine.idle()

    def test_negative_stride(self):
        mem = make_memory()
        mem.storage.load_array(10, [1.0, 2.0, 3.0])
        q = OperandQueue("lq0", 8)
        engine = StreamEngine(mem, max_streams=1)
        engine.start(StreamDescriptor(StreamKind.LOAD, 12, 3, -1, target=q))
        assert drain(engine, mem, q, 3) == [3.0, 2.0, 1.0]

    def test_stride_zero_repeats(self):
        mem = make_memory()
        mem.storage.write(5, 7.0)
        q = OperandQueue("lq0", 8)
        engine = StreamEngine(mem, max_streams=1)
        engine.start(StreamDescriptor(StreamKind.LOAD, 5, 3, 0, target=q))
        assert drain(engine, mem, q, 3) == [7.0, 7.0, 7.0]

    def test_backpressure_from_full_queue(self):
        mem = make_memory()
        q = OperandQueue("lq0", 2)
        engine = StreamEngine(mem, max_streams=1)
        engine.start(StreamDescriptor(StreamKind.LOAD, 0, 8, 1, target=q))
        for t in range(20):
            mem.tick(t)
            engine.tick(t)
        # never more than capacity outstanding, stream not done
        assert len(q) == 2
        assert not engine.idle()
        assert q.stats.full_stalls > 0

    def test_zero_count_stream_never_goes_live(self):
        mem = make_memory()
        q = OperandQueue("lq0", 2)
        engine = StreamEngine(mem, max_streams=1)
        engine.start(StreamDescriptor(StreamKind.LOAD, 0, 0, 1, target=q))
        assert engine.idle()


class TestStoreStream:
    def test_store_consumes_data_queue(self):
        mem = make_memory()
        dq = OperandQueue("sdq0", 8)
        for v in (5.0, 6.0, 7.0):
            dq.push(v)
        engine = StreamEngine(mem, max_streams=1)
        engine.start(
            StreamDescriptor(StreamKind.STORE, 20, 3, 1, data_queue=dq)
        )
        for t in range(20):
            mem.tick(t)
            engine.tick(t)
        assert mem.storage.dump_array(20, 3).tolist() == [5.0, 6.0, 7.0]
        assert engine.idle()

    def test_store_waits_for_data(self):
        mem = make_memory()
        dq = OperandQueue("sdq0", 8)
        engine = StreamEngine(mem, max_streams=1)
        engine.start(
            StreamDescriptor(StreamKind.STORE, 20, 1, 1, data_queue=dq)
        )
        engine.tick(0)
        assert mem.storage.read(20) == 0.0
        dq.push(9.0)
        engine.tick(1)
        assert mem.storage.read(20) == 9.0


class TestGatherScatter:
    def test_gather_chain(self):
        mem = make_memory()
        mem.storage.load_array(0, [30.0, 31.0, 32.0])   # table at 30..
        mem.storage.load_array(30, [0.5, 1.5, 2.5])
        iq = OperandQueue("iq0", 8)
        lq = OperandQueue("lq0", 8)
        engine = StreamEngine(mem, max_streams=2)
        # indices land in iq via a load stream; gather consumes them
        engine.start(StreamDescriptor(StreamKind.LOAD, 0, 3, 1, target=iq))
        engine.start(
            StreamDescriptor(
                StreamKind.GATHER, 0, 3, target=lq, index_queue=iq
            )
        )
        assert drain(engine, mem, lq, 3) == [0.5, 1.5, 2.5]

    def test_scatter(self):
        mem = make_memory()
        iq = OperandQueue("iq0", 8)
        dq = OperandQueue("sdq0", 8)
        for idx, val in ((2, 20.0), (0, 21.0), (1, 22.0)):
            iq.push(float(idx))
            dq.push(val)
        engine = StreamEngine(mem, max_streams=1)
        engine.start(
            StreamDescriptor(
                StreamKind.SCATTER, 40, 3, data_queue=dq, index_queue=iq
            )
        )
        for t in range(20):
            mem.tick(t)
            engine.tick(t)
        assert mem.storage.dump_array(40, 3).tolist() == [21.0, 22.0, 20.0]


class TestEngineLimits:
    def test_slot_exhaustion(self):
        mem = make_memory()
        q = OperandQueue("lq0", 8)
        engine = StreamEngine(mem, max_streams=1)
        engine.start(StreamDescriptor(StreamKind.LOAD, 0, 8, 1, target=q))
        assert not engine.has_free_slot()
        with pytest.raises(SimulationError):
            engine.start(
                StreamDescriptor(StreamKind.LOAD, 0, 8, 1, target=q)
            )

    def test_issue_bandwidth(self):
        mem = make_memory(accepts=4)
        q1, q2 = OperandQueue("a", 16), OperandQueue("b", 16)
        engine = StreamEngine(mem, max_streams=2, issue_per_cycle=1)
        engine.start(StreamDescriptor(StreamKind.LOAD, 0, 8, 1, target=q1))
        engine.start(StreamDescriptor(StreamKind.LOAD, 32, 8, 1, target=q2))
        assert engine.tick(0) == 1  # one request despite two live streams

    def test_round_robin_fairness(self):
        mem = make_memory(accepts=4, busy=1)
        q1, q2 = OperandQueue("a", 16), OperandQueue("b", 16)
        engine = StreamEngine(mem, max_streams=2, issue_per_cycle=1)
        engine.start(StreamDescriptor(StreamKind.LOAD, 0, 4, 1, target=q1))
        engine.start(StreamDescriptor(StreamKind.LOAD, 32, 4, 1, target=q2))
        for t in range(8):
            mem.tick(t)
            engine.tick(t)
        # both streams progressed rather than one starving
        assert len(q1) >= 3 and len(q2) >= 3

    def test_queue_roles(self):
        mem = make_memory()
        q = OperandQueue("lq0", 8)
        iq = OperandQueue("iq0", 8)
        engine = StreamEngine(mem, max_streams=4)
        engine.start(StreamDescriptor(StreamKind.LOAD, 0, 8, 1, target=iq))
        engine.start(
            StreamDescriptor(
                StreamKind.GATHER, 0, 8, target=q, index_queue=iq
            )
        )
        produced, consumed = engine.queue_roles_in_use()
        assert produced == {iq, q}
        assert consumed == {iq}
