"""Event-horizon scheduler equivalence and per-component contracts.

Two layers of guarantees:

**Equivalence** — running the same machine (or cluster) under every
registered scheduler (``"naive"``, ``"joint-idle"``,
``"event-horizon"`` and the program-specialized ``"codegen"`` backend)
must produce bit-identical observables: cycle counts, every stall
counter, LOD accounting, queue occupancy statistics (samples, sums,
maxima, full histograms — exercising the lazy event-driven accounting
against per-cycle sampling), metrics bucket partitions, and the final
memory image.  Hypothesis drives randomized kernels, latencies, queue
depths and bank counts through all the loops; the comparison iterates
:data:`SMAMachine.SCHEDULERS`, so a newly registered scheduler is
covered automatically.

**Contracts** — each component's ``next_event_time(now)`` must name the
earliest cycle its externally visible state can change with every other
component frozen.  The global property test checks the soundness
direction the scheduler actually relies on: immediately after a cycle
that made no progress (the scheduler's "template" position, where stall
flags are fresh), no progress may occur before the reported horizon.
Direct unit tests pin the per-component cases (bank-free clamps, passive
``None`` contracts, the malformed-index live-step escape hatch).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import MemoryConfig, QueueConfig, SMAConfig
from repro.core import SMACluster, SMAMachine
from repro.core.descriptors import StreamDescriptor, StreamEngine, StreamKind
from repro.core.store_unit import StoreUnit
from repro.errors import SimulationError
from repro.isa import assemble
from repro.kernels import get_kernel
from repro.memory import BankedMemory, MainMemory
from repro.queues import QueueFile

from tests.test_cluster_fast_forward import (
    _build_cluster,
    _observables as _cluster_observables,
)
from tests.test_fast_forward import _fuzz_kernels, _machine, _observables

SCHEDULERS = SMAMachine.SCHEDULERS


def _full_observables(machine, result):
    obs = _observables(machine, result)
    obs["image"] = machine.memory.dump_array(
        0, machine.config.memory.size
    ).tolist()
    return obs


def _run_all_schedulers(kernel, inputs, latency, depth, banks,
                        metrics=False):
    observed = {}
    for scheduler in SCHEDULERS:
        machine = _machine(kernel, inputs, latency, depth, banks)
        if metrics:
            machine.attach_metrics()
        result = machine.run(scheduler=scheduler)
        observed[scheduler] = _full_observables(machine, result)
    reference = next(iter(SCHEDULERS))
    for scheduler, obs in observed.items():
        assert obs == observed[reference], (
            f"{scheduler} disagrees with {reference}"
        )
    return observed[reference]


# ---------------------------------------------------------------------------
# machine-level equivalence
# ---------------------------------------------------------------------------


@settings(max_examples=40, deadline=None)
@given(
    _fuzz_kernels(),
    st.sampled_from((2, 4, 8, 16, 32, 64)),   # latency
    st.sampled_from((1, 2, 4, 8, 16)),        # queue depth
    st.sampled_from((1, 2, 8)),               # banks
    st.integers(0, 2**31),                    # input seed
)
def test_schedulers_identical_on_random_kernels(
    kernel_n, latency, depth, banks, seed
):
    kernel, _n = kernel_n
    rng = np.random.default_rng(seed)
    inputs = {
        decl.name: rng.uniform(-2, 2, decl.size) for decl in kernel.arrays
    }
    _run_all_schedulers(kernel, inputs, latency, depth, banks)


@pytest.mark.parametrize(
    "name", ("daxpy", "hydro", "tridiag", "computed_gather", "pic_gather")
)
@pytest.mark.parametrize("latency", (8, 32, 128))
@pytest.mark.parametrize("depth", (2, 8))
def test_schedulers_identical_on_suite_kernels(name, latency, depth):
    kernel, inputs = get_kernel(name).instantiate(32)
    _run_all_schedulers(kernel, inputs, latency, depth, banks=8)


def test_schedulers_identical_with_metrics_attached():
    """The event-horizon replay must drive the metrics classifier's
    closed-form replay exactly like the joint-idle path does."""
    kernel, inputs = get_kernel("tridiag").instantiate(48)
    obs = _run_all_schedulers(
        kernel, inputs, latency=64, depth=2, banks=8, metrics=True
    )
    breakdown = obs["result"]["stall_breakdown"]
    assert sum(breakdown.values()) == obs["cycle"]


def test_unknown_scheduler_rejected():
    machine = _machine(
        *get_kernel("daxpy").instantiate(8), latency=4, depth=4, banks=4
    )
    with pytest.raises(ValueError, match="unknown scheduler"):
        machine.run(scheduler="speculative")


@pytest.mark.parametrize("scheduler", SCHEDULERS)
def test_deadlock_parity_across_schedulers(scheduler):
    """The deadlock diagnostic must fire at the identical cycle with the
    identical stall accounting under every scheduler."""
    from tests.test_fast_forward import _starved_machine

    machine = _starved_machine()
    with pytest.raises(SimulationError, match="deadlock"):
        machine.run(deadlock_window=100, scheduler=scheduler)
    reference = _starved_machine()
    with pytest.raises(SimulationError, match="deadlock"):
        reference.run(deadlock_window=100, scheduler="naive")
    assert machine.cycle == reference.cycle
    assert dict(machine.ep.stats.stall_cycles) == dict(
        reference.ep.stats.stall_cycles
    )


@pytest.mark.parametrize("scheduler", SCHEDULERS)
def test_cycle_budget_parity_across_schedulers(scheduler):
    from tests.test_fast_forward import _starved_machine

    machine = _starved_machine()
    with pytest.raises(SimulationError, match="budget"):
        machine.run(
            max_cycles=60, deadlock_window=1000, scheduler=scheduler
        )
    assert machine.cycle == 60


# ---------------------------------------------------------------------------
# cluster-level equivalence
# ---------------------------------------------------------------------------


@settings(max_examples=15, deadline=None)
@given(
    st.lists(
        st.sampled_from(("daxpy", "hydro", "tridiag", "pic_gather")),
        min_size=1, max_size=3,
    ),
    st.sampled_from((8, 32, 64)),         # latency
    st.sampled_from((2, 8)),              # queue depth
    st.sampled_from((2, 8)),              # banks
    st.sampled_from((1, 2)),              # port width
    st.integers(0, 2**31),                # input seed
)
def test_cluster_schedulers_identical_on_random_mixes(
    names, latency, depth, banks, ports, seed
):
    specs = [
        get_kernel(name).instantiate(24, seed + j)
        for j, name in enumerate(names)
    ]
    observed = {}
    for scheduler in SCHEDULERS:
        cluster = _build_cluster(specs, latency, depth, banks, ports)
        metrics = cluster.attach_metrics()
        result = cluster.run(scheduler=scheduler)
        observed[scheduler] = _cluster_observables(cluster, result, metrics)
    reference = next(iter(SCHEDULERS))
    for scheduler, obs in observed.items():
        assert obs == observed[reference], (
            f"cluster {scheduler} disagrees with {reference}"
        )


def test_cluster_rejects_unknown_scheduler():
    specs = [get_kernel("daxpy").instantiate(16, 1)]
    cluster = _build_cluster(specs, latency=8, depth=4, banks=4)
    with pytest.raises(ValueError, match="unknown scheduler"):
        cluster.run(scheduler="speculative")


# ---------------------------------------------------------------------------
# the global soundness property
# ---------------------------------------------------------------------------


def _assert_horizons_sound(machine, limit=2_000_000):
    """Naive-tick the machine; after every cycle that made no progress
    (fresh stall flags — the scheduler's template position), require that
    no progress occurs before the reported horizon."""
    jumps_checked = 0
    prev = machine.progress_state()
    progressed = True
    while not machine.done():
        assert machine.cycle < limit, "machine did not terminate"
        if not progressed:
            horizon = machine.next_event_time(machine.cycle)
            if horizon is not None and horizon > machine.cycle:
                jumps_checked += 1
                while machine.cycle < horizon and not machine.done():
                    machine.step_cycle()
                    state = machine.progress_state()
                    assert state == prev, (
                        f"progress at cycle {machine.cycle} before "
                        f"horizon {horizon}: {prev} -> {state}"
                    )
                continue
        machine.step_cycle()
        state = machine.progress_state()
        progressed = state != prev
        prev = state
    return jumps_checked


@pytest.mark.parametrize(
    "name,latency,depth",
    [
        ("daxpy", 64, 2),
        ("hydro", 128, 4),
        ("tridiag", 64, 2),        # LOD recurrence: AP drags to EP speed
        ("pic_gather", 64, 4),     # indexed descriptors
    ],
)
def test_no_progress_before_reported_horizon(name, latency, depth):
    kernel, inputs = get_kernel(name).instantiate(32)
    machine = _machine(kernel, inputs, latency=latency, depth=depth,
                       banks=2)
    jumps = _assert_horizons_sound(machine)
    assert jumps > 0, "workload never exposed a jumpable window"


@settings(max_examples=15, deadline=None)
@given(
    _fuzz_kernels(),
    st.sampled_from((16, 64)),
    st.sampled_from((1, 2)),
    st.integers(0, 2**31),
)
def test_no_progress_before_reported_horizon_fuzzed(
    kernel_n, latency, depth, seed
):
    kernel, _n = kernel_n
    rng = np.random.default_rng(seed)
    inputs = {
        decl.name: rng.uniform(-2, 2, decl.size) for decl in kernel.arrays
    }
    machine = _machine(kernel, inputs, latency=latency, depth=depth,
                       banks=1)
    _assert_horizons_sound(machine)


# ---------------------------------------------------------------------------
# per-component contracts
# ---------------------------------------------------------------------------


def _memory(latency=8, bank_busy=4, banks=2, size=256):
    cfg = MemoryConfig(
        latency=latency, bank_busy=bank_busy, num_banks=banks, size=size
    )
    return BankedMemory(MainMemory(size), cfg)


class TestBankedMemoryContract:
    def test_no_pending_completions(self):
        assert _memory().next_completion_time(0) is None

    def test_completion_time_and_clamp(self):
        mem = _memory(latency=8)
        assert mem.try_issue(0, 0, on_complete=lambda v: None)
        assert mem.next_completion_time(0) == 8
        assert mem.next_completion_time(8) == 8
        assert mem.next_completion_time(12) == 12  # overdue clamps to now

    def test_writes_without_callback_are_not_completions(self):
        mem = _memory()
        assert mem.try_issue(0, 0, is_write=True, value=1.0)
        assert mem.next_completion_time(0) is None


class TestStoreUnitContract:
    def _unit(self, **mem_kwargs):
        queues = QueueFile(SMAConfig())
        memory = _memory(**mem_kwargs)
        return StoreUnit(queues, memory), queues, memory

    def test_empty_saq_is_passive(self):
        su, _, _ = self._unit()
        assert su.next_event_time(0) is None

    def test_address_without_data_is_passive(self):
        su, queues, _ = self._unit()
        queues.store_addr.push((4, 0))
        assert su.next_event_time(0) is None

    def test_ready_pair_clamps_to_bank_free_time(self):
        su, queues, memory = self._unit(bank_busy=6, banks=2)
        queues.store_addr.push((4, 0))
        queues.store_data[0].push(1.5)
        assert su.next_event_time(0) == 0
        # occupy the target bank (address 4 -> bank 0)
        assert memory.try_issue(0, 0, is_write=True, value=0.0)
        assert su.next_event_time(1) == 6

    def test_no_stall_notes_from_probe(self):
        """The contract probe must be pure — the reference tick records
        data_wait/empty stalls, the probe must not."""
        su, queues, _ = self._unit()
        queues.store_addr.push((4, 0))
        su.next_event_time(0)
        assert su.stats.data_wait_cycles == 0
        assert queues.store_data[0].stats.empty_stalls == 0


class TestStreamEngineContract:
    def _engine(self, **mem_kwargs):
        memory = _memory(**mem_kwargs)
        return StreamEngine(memory, max_streams=4), memory

    def _queue(self, name="q", capacity=4):
        from repro.queues import OperandQueue

        return OperandQueue(name, capacity)

    def test_idle_engine_is_passive(self):
        engine, _ = self._engine()
        assert engine.next_event_time(0) is None

    def test_missing_index_is_passive(self):
        engine, _ = self._engine()
        engine.start(StreamDescriptor(
            StreamKind.GATHER, base=0, count=4,
            target=self._queue("t"), index_queue=self._queue("i"),
        ))
        assert engine.next_event_time(0) is None

    def test_full_target_is_passive(self):
        engine, _ = self._engine()
        target = self._queue("t", capacity=1)
        target.push(9.0)
        engine.start(StreamDescriptor(
            StreamKind.LOAD, base=0, count=4, target=target,
        ))
        assert engine.next_event_time(0) is None

    def test_empty_data_queue_is_passive(self):
        engine, _ = self._engine()
        engine.start(StreamDescriptor(
            StreamKind.STORE, base=0, count=4,
            data_queue=self._queue("d"),
        ))
        assert engine.next_event_time(0) is None

    def test_busy_bank_clamps_and_idle_bank_is_now(self):
        engine, memory = self._engine(bank_busy=5, banks=2)
        engine.start(StreamDescriptor(
            StreamKind.LOAD, base=0, count=4, target=self._queue("t"),
        ))
        assert engine.next_event_time(0) == 0
        assert memory.try_issue(0, 0, is_write=True, value=0.0)
        assert engine.next_event_time(1) == 5

    def test_min_across_descriptors(self):
        engine, memory = self._engine(bank_busy=5, banks=2)
        assert memory.try_issue(0, 0, is_write=True, value=0.0)  # bank 0
        assert memory.try_issue(1, 1, is_write=True, value=0.0)  # bank 1
        engine.start(StreamDescriptor(          # bank 0, free at 5
            StreamKind.LOAD, base=0, count=4, target=self._queue("t0"),
        ))
        engine.start(StreamDescriptor(          # bank 1, free at 6
            StreamKind.LOAD, base=1, count=4, stride=2,
            target=self._queue("t1"),
        ))
        assert engine.next_event_time(2) == 5

    def test_malformed_index_forces_live_step(self):
        """A non-integral index must not raise from the pure probe; it
        returns ``now`` so the reference issue path raises the usual
        diagnostic on the very next live cycle."""
        engine, _ = self._engine()
        index_queue = self._queue("i")
        index_queue.push(2.5)
        engine.start(StreamDescriptor(
            StreamKind.GATHER, base=0, count=4,
            target=self._queue("t"), index_queue=index_queue,
        ))
        assert engine.next_event_time(7) == 7

    def test_no_stall_notes_from_probe(self):
        engine, _ = self._engine()
        target = self._queue("t", capacity=1)
        target.push(9.0)
        engine.start(StreamDescriptor(
            StreamKind.LOAD, base=0, count=4, target=target,
        ))
        engine.next_event_time(0)
        assert target.stats.full_stalls == 0


class TestProcessorContracts:
    def _machine(self, ap_text, ep_text="halt", **mem_kwargs):
        cfg = SMAConfig(memory=MemoryConfig(
            latency=mem_kwargs.get("latency", 8),
            bank_busy=mem_kwargs.get("bank_busy", 4),
            num_banks=mem_kwargs.get("banks", 1),
        ))
        return SMAMachine(assemble(ap_text), assemble(ep_text), cfg)

    def test_unstalled_ap_acts_now(self):
        machine = self._machine("nop\nhalt")
        assert machine.ap.next_event_time(3) == 3

    def test_halted_ap_is_passive(self):
        machine = self._machine("halt")
        machine.step_cycle()
        assert machine.ap.halted
        assert machine.ap.next_event_time(5) is None

    def test_memory_busy_ap_clamps_to_bank_free(self):
        machine = self._machine(
            "ldq lq0, #0, #0\nldq lq1, #4, #0\nhalt",
            banks=1, bank_busy=6,
        )
        machine.step_cycle()  # first ldq issues; bank busy until 6
        machine.step_cycle()  # second ldq stalls on memory_busy
        assert machine.ap._stalled_on == "memory_busy"
        assert machine.ap.next_event_time(2) == 6

    def test_lod_stalled_ap_is_passive(self):
        machine = self._machine("fromq a1, eaq\nhalt")
        machine.step_cycle()
        assert machine.ap._stalled_on == "lod_eaq"
        assert machine.ap.next_event_time(1) is None

    def test_ep_contract(self):
        machine = self._machine(
            "halt", "add x1, lq0, #1.0\nhalt"
        )
        assert machine.ep.next_event_time(0) == 0
        machine.step_cycle()
        assert machine.ep._stalled_on == "lq_empty"
        assert machine.ep.next_event_time(1) is None

    def test_operand_queue_is_passive(self):
        machine = self._machine("halt")
        for queue in machine.queues.all_queues():
            assert queue.next_event_time(0) is None


# ---------------------------------------------------------------------------
# lazy occupancy accounting survives a partial run boundary
# ---------------------------------------------------------------------------


def test_two_phase_run_keeps_occupancy_exact():
    """Statistics must stay exact when an event-horizon run aborts (cycle
    budget) and a second run finishes the machine — the lazy sampling
    bracket opens and closes twice."""
    kernel, inputs = get_kernel("daxpy").instantiate(32)
    reference = _machine(kernel, inputs, latency=64, depth=4, banks=8)
    expected = _full_observables(
        reference, reference.run(scheduler="naive")
    )

    machine = _machine(kernel, inputs, latency=64, depth=4, banks=8)
    with pytest.raises(SimulationError, match="budget"):
        machine.run(max_cycles=expected["cycle"] // 2,
                    scheduler="event-horizon")
    result = machine.run(scheduler="event-horizon")
    assert _full_observables(machine, result) == expected
