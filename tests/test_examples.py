"""The bundled examples must run clean end to end (subprocess smoke)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script), "32"]
        if script.name == "livermore_sweep.py"
        else [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "example produced no output"


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert {"quickstart.py", "livermore_sweep.py", "custom_kernel.py",
            "raw_assembly.py"} <= names
