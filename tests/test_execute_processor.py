"""Execute processor: queue operands, stalls, legality validation."""

import math

import pytest

from repro.config import SMAConfig
from repro.core import SMAMachine
from repro.errors import SimulationError
from repro.isa import assemble


def machine(ep_src, ap_src="halt"):
    return SMAMachine(assemble(ap_src, "ap"), assemble(ep_src, "ep"),
                      SMAConfig())


class TestALU:
    def test_register_arithmetic(self):
        m = machine("""
            mov x1, #2.0
            mov x2, #0.5
            div x3, x1, x2
            sqrt x4, x3
            halt
        """)
        m.run()
        assert m.ep.registers[3] == 4.0
        assert m.ep.registers[4] == 2.0

    def test_select(self):
        m = machine("""
            mov x1, #0.7
            cmplt x2, #0.5, x1
            sel x3, x2, #1.0, #2.0
            cmplt x4, x1, #0.5
            sel x5, x4, #1.0, #2.0
            halt
        """)
        m.run()
        assert m.ep.registers[3] == 1.0
        assert m.ep.registers[5] == 2.0

    def test_floor_mod(self):
        m = machine("""
            mov x1, #7.75
            mod x2, x1, #2.0
            floor x3, x2
            halt
        """)
        m.run()
        assert m.ep.registers[2] == 1.75
        assert m.ep.registers[3] == 1.0

    def test_min_max_abs_neg(self):
        m = machine("""
            mov x1, #-3.0
            abs x2, x1
            neg x3, x2
            min x4, x2, x3
            max x5, x2, x3
            halt
        """)
        m.run()
        assert m.ep.registers[2] == 3.0
        assert m.ep.registers[3] == -3.0
        assert m.ep.registers[4] == -3.0
        assert m.ep.registers[5] == 3.0

    def test_div_by_zero_raises(self):
        m = machine("""
            mov x1, #1.0
            div x2, x1, #0.0
            halt
        """)
        with pytest.raises(ZeroDivisionError):
            m.run()


class TestQueueOperands:
    def test_pop_from_load_queue(self):
        m = machine("""
            add x1, lq0, lq1
            halt
        """, """
            ldq lq0, #10, #0
            ldq lq1, #11, #0
            halt
        """)
        m.memory.write(10, 1.5)
        m.memory.write(11, 2.0)
        m.run()
        assert m.ep.registers[1] == 3.5

    def test_push_to_sdq_blocks_when_full(self):
        # no store drains sdq0: EP fills it then stalls forever -> deadlock
        m = machine("""
            mov x1, #20
            t: mov sdq0, #1.0
            decbnz x1, t
            halt
        """)
        with pytest.raises(SimulationError, match="deadlock"):
            m.run(deadlock_window=200)
        assert m.ep.stats.stall_cycles.get("q_full", 0) > 0

    def test_empty_queue_stall_recorded(self):
        m = machine("""
            mov x1, lq0
            halt
        """, """
            mov a1, #30
            mov a2, #1
            t: add a1, a1, #0
            decbnz a2, t
            ldq lq0, a1, #0
            halt
        """)
        m.run()
        assert m.ep.stats.stall_cycles.get("lq_empty", 0) > 0


class TestValidation:
    def test_memory_ops_rejected(self):
        with pytest.raises(SimulationError, match="not a valid execute"):
            machine("ldq lq0, x1, #0\nhalt")

    def test_pop_of_non_load_queue_rejected(self):
        with pytest.raises(SimulationError, match="only pop load queues"):
            machine("mov x1, saq\nhalt")

    def test_push_to_load_queue_rejected(self):
        with pytest.raises(SimulationError, match="read-only"):
            machine("mov lq0, x1\nhalt")

    def test_same_queue_twice_rejected(self):
        with pytest.raises(SimulationError, match="twice"):
            machine("add x1, lq0, lq0\nhalt")

    def test_push_to_eaq_and_ebq_allowed(self):
        m = machine("""
            mov eaq, #5
            cmplt ebq, #1.0, #2.0
            halt
        """, """
            fromq a1, eaq
            bqnz done
            done: halt
        """)
        m.run()
        assert m.ap.registers[1] == 5
