"""Experiment-number invariance guard.

The event-horizon scheduler, the joint-idle fast-forward and every
hot-loop fast path are *pure performance* changes: no measured R-T/R-F
number may move.  ``golden_experiments.json`` pins every experiment
table — columns and all row values — at a reduced problem size;
this suite replays the same calls and compares exactly (a JSON
round-trip on the live table normalizes tuples to lists, nothing else).

If an intentional timing-model or experiment-definition change moves a
number, regenerate with
``PYTHONPATH=src python scripts/update_golden_experiments.py`` and
review the diff — every changed value should be explicable by the
change you made.
"""

import json
import pathlib

import pytest

from repro.harness.experiments import EXPERIMENTS

GOLDEN = json.loads(
    (pathlib.Path(__file__).parent / "golden_experiments.json").read_text()
)


def test_golden_covers_every_experiment():
    assert sorted(GOLDEN["tables"]) == sorted(EXPERIMENTS)


@pytest.mark.parametrize("eid", sorted(GOLDEN["tables"]))
def test_experiment_numbers_pinned(eid):
    want = GOLDEN["tables"][eid]
    table = EXPERIMENTS[eid](**want["kwargs"])
    assert list(table.columns) == want["columns"]
    got_rows = json.loads(json.dumps([list(row) for row in table.rows]))
    assert got_rows == want["rows"], (
        f"{eid} measured numbers changed; if intentional, regenerate "
        "tests/golden_experiments.json via "
        "scripts/update_golden_experiments.py"
    )
