"""Fast-forward equivalence: the accelerated simulation loop must be
indistinguishable from naive cycle-by-cycle ticking.

The property at the heart of this module runs the same machine twice —
``fast_forward=False`` (one Python iteration per simulated cycle, the
seed behaviour) and ``fast_forward=True`` (idle stretches replayed in
closed form) — and requires *every* observable statistic to be
bit-identical: cycle counts, stall-cause counters, LOD accounting,
memory traffic and utilization, and each queue's full occupancy
histogram.  This is what licenses keeping ``tests/golden_cycles.json``
unchanged while the simulator got faster.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import MemoryConfig, QueueConfig, SMAConfig
from repro.core import SMAMachine
from repro.errors import SimulationError
from repro.harness.runner import _fit_memory, _load_inputs
from repro.isa import Instruction, Op, Program, Queue, QueueSpace, Reg
from repro.kernels import (
    Affine,
    ArrayDecl,
    Assign,
    BinOp,
    Const,
    Kernel,
    Loop,
    Ref,
    get_kernel,
    lower_sma,
)

#: suite kernels with structurally diverse access patterns (streams,
#: recurrence, gather, loss-of-decoupling)
SUITE_REPS = ("daxpy", "hydro", "tridiag", "computed_gather", "pic_gather")


def _machine(kernel, inputs, latency, depth, banks):
    lowered = lower_sma(kernel)
    queues = QueueConfig(
        load_queue_depth=depth,
        store_data_depth=depth,
        store_addr_depth=depth,
        index_queue_depth=depth,
    )
    mem = MemoryConfig(
        latency=latency, bank_busy=max(1, latency // 2), num_banks=banks
    )
    cfg = SMAConfig(memory=mem, queues=queues)
    cfg = SMAConfig(
        memory=_fit_memory(cfg.memory, lowered.layout), queues=queues
    )
    machine = SMAMachine(
        lowered.access_program, lowered.execute_program, cfg
    )
    _load_inputs(machine, lowered.layout, kernel, inputs)
    return machine


def _observables(machine, result):
    """Everything the two simulation modes must agree on, exactly."""
    return {
        "cycle": machine.cycle,
        "result": result.to_dict(),
        "ap_stalls": dict(result.ap.stall_cycles),
        "ep_stalls": dict(result.ep.stall_cycles),
        "occupancy_sum": machine._occupancy_sum,
        "occupancy_max": machine._occupancy_max,
        "queues": {
            name: (
                stats.pushes, stats.pops, stats.empty_stalls,
                stats.full_stalls, stats.samples, stats.occupancy_sum,
                stats.occupancy_max, dict(stats.histogram),
            )
            for name, stats in result.queue_stats.items()
        },
    }


def _run_both_modes(kernel, inputs, latency, depth, banks):
    observed = []
    for fast in (False, True):
        machine = _machine(kernel, inputs, latency, depth, banks)
        result = machine.run(fast_forward=fast)
        observed.append(_observables(machine, result))
    naive, fast = observed
    assert naive == fast


@st.composite
def _fuzz_kernels(draw):
    """Random streaming kernels over two input arrays."""
    n = draw(st.integers(3, 14))
    expr = Ref("a", Affine.of(0, i=1))
    for _ in range(draw(st.integers(0, 2))):
        other = draw(
            st.one_of(
                st.builds(
                    Const,
                    st.floats(-2, 2, allow_nan=False).map(
                        lambda f: round(f, 3)
                    ),
                ),
                st.just(Ref("b", Affine.of(0, i=1))),
            )
        )
        expr = BinOp(draw(st.sampled_from(("+", "-", "*", "max"))),
                     expr, other)
    kernel = Kernel(
        "fuzz_ff",
        (ArrayDecl("a", n + 2), ArrayDecl("b", n + 2),
         ArrayDecl("x", n + 2)),
        (Loop("i", n, (Assign(Ref("x", Affine.of(0, i=1)), expr),)),),
    )
    return kernel, n


@settings(max_examples=40, deadline=None)
@given(
    _fuzz_kernels(),
    st.sampled_from((2, 4, 8, 16, 32, 64)),   # latency
    st.sampled_from((1, 2, 4, 8, 16)),        # queue depth
    st.sampled_from((1, 2, 8)),               # banks
    st.integers(0, 2**31),                    # input seed
)
def test_fast_forward_identical_on_random_kernels(
    kernel_n, latency, depth, banks, seed
):
    kernel, _n = kernel_n
    rng = np.random.default_rng(seed)
    inputs = {
        decl.name: rng.uniform(-2, 2, decl.size) for decl in kernel.arrays
    }
    _run_both_modes(kernel, inputs, latency, depth, banks)


@pytest.mark.parametrize("name", SUITE_REPS)
@pytest.mark.parametrize("latency", (2, 8, 32, 64))
@pytest.mark.parametrize("depth", (1, 4, 16))
def test_fast_forward_identical_on_suite_kernels(name, latency, depth):
    kernel, inputs = get_kernel(name).instantiate(32)
    _run_both_modes(kernel, inputs, latency, depth, banks=8)


def test_fast_forward_identical_without_streams():
    """Per-element (descriptor-less) mode takes different stall paths."""
    kernel, inputs = get_kernel("daxpy").instantiate(32)
    lowered = lower_sma(kernel, use_streams=False)
    observed = []
    for fast in (False, True):
        mem = MemoryConfig(latency=32, bank_busy=16, num_banks=8)
        cfg = SMAConfig(
            memory=_fit_memory(mem, lowered.layout), queues=QueueConfig()
        )
        machine = SMAMachine(
            lowered.access_program, lowered.execute_program, cfg
        )
        _load_inputs(machine, lowered.layout, kernel, inputs)
        result = machine.run(fast_forward=fast)
        observed.append(_observables(machine, result))
    assert observed[0] == observed[1]


# ---------------------------------------------------------------------------
# observer disables the fast path
# ---------------------------------------------------------------------------


def test_observer_sees_every_cycle():
    """An attached observer must receive one call per simulated cycle,
    in order, even when fast-forward is globally enabled."""
    kernel, inputs = get_kernel("daxpy").instantiate(32)
    machine = _machine(kernel, inputs, latency=64, depth=8, banks=8)
    seen = []
    result = machine.run(observer=lambda m, cycle: seen.append(cycle))
    assert seen == list(range(result.cycles))

    # and the traced run matches the fast run's statistics exactly
    fast = _machine(kernel, inputs, latency=64, depth=8, banks=8)
    assert fast.run(fast_forward=True).to_dict() == result.to_dict()


# ---------------------------------------------------------------------------
# zero-cycle / immediate-halt result collection (satellite)
# ---------------------------------------------------------------------------

_HALT = Program("halt_only", (Instruction(Op.HALT, None, ()),), {})


def test_collect_result_before_any_cycle():
    """An unrun machine must report zeroed rates, not divide by zero."""
    machine = SMAMachine(_HALT, _HALT, SMAConfig())
    result = machine.collect_result()
    assert result.cycles == 0
    assert result.mean_outstanding_loads == 0.0
    assert result.memory_utilization == 0.0


def test_immediately_halting_program():
    machine = SMAMachine(_HALT, _HALT, SMAConfig())
    result = machine.run()
    assert result.cycles >= 1
    assert result.instructions == 2  # the two HALTs
    assert result.mean_outstanding_loads == 0.0
    assert result.memory_utilization == 0.0


# ---------------------------------------------------------------------------
# exception parity: deadlocks and budgets fire identically in both modes
# ---------------------------------------------------------------------------


def _starved_machine():
    """EP waits forever on a load queue nothing fills."""
    ep = Program(
        "starved",
        (
            Instruction(Op.ADD, Reg(0), (Queue(QueueSpace.LQ, 0), Reg(0))),
            Instruction(Op.HALT, None, ()),
        ),
        {},
    )
    return SMAMachine(_HALT, ep, SMAConfig())


@pytest.mark.parametrize("fast", (False, True))
def test_deadlock_detected_identically(fast):
    machine = _starved_machine()
    with pytest.raises(SimulationError, match="deadlock"):
        machine.run(deadlock_window=100, fast_forward=fast)
    # the deadlock must fire at the same cycle with the same accounting
    reference = _starved_machine()
    with pytest.raises(SimulationError):
        reference.run(deadlock_window=100, fast_forward=not fast)
    assert machine.cycle == reference.cycle
    assert dict(machine.ep.stats.stall_cycles) == dict(
        reference.ep.stats.stall_cycles
    )


@pytest.mark.parametrize("fast", (False, True))
def test_cycle_budget_detected_identically(fast):
    machine = _starved_machine()
    with pytest.raises(SimulationError, match="budget"):
        machine.run(max_cycles=60, deadlock_window=1000, fast_forward=fast)
    reference = _starved_machine()
    with pytest.raises(SimulationError, match="budget"):
        reference.run(
            max_cycles=60, deadlock_window=1000, fast_forward=not fast
        )
    assert machine.cycle == reference.cycle
    assert dict(machine.ep.stats.stall_cycles) == dict(
        reference.ep.stats.stall_cycles
    )
