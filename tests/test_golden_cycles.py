"""Exact-cycle regression guard.

The simulator is deterministic, so the cycle counts of every suite kernel
at the reference configuration are pinned to the values in
``golden_cycles.json``.  If an intentional timing-model change moves them,
regenerate with ``python scripts/update_golden.py`` and review the diff —
every changed number should be explicable by the change you made.
"""

import json
import pathlib

import pytest

from repro.harness.runner import run_on_scalar, run_on_sma, run_on_vector
from repro.kernels import get_kernel, kernel_names
from repro.kernels.lower_vector import VectorizationError

GOLDEN = json.loads(
    (pathlib.Path(__file__).parent / "golden_cycles.json").read_text()
)


def test_golden_covers_whole_suite():
    assert sorted(GOLDEN["cycles"]) == kernel_names()


@pytest.mark.parametrize("name", sorted(GOLDEN["cycles"]))
def test_cycle_counts_pinned(name):
    spec = get_kernel(name)
    kernel, inputs = spec.instantiate(GOLDEN["n"], seed=GOLDEN["seed"])
    want = GOLDEN["cycles"][name]
    assert run_on_scalar(kernel, inputs).cycles == want["scalar"]
    assert run_on_sma(kernel, inputs).cycles == want["sma"]
    assert (
        run_on_sma(kernel, inputs, use_streams=False).cycles
        == want["sma_nostream"]
    )
    try:
        vector = run_on_vector(kernel, inputs).cycles
    except VectorizationError:
        vector = None
    assert vector == want["vector"]
