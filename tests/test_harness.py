"""Experiment harness: table plumbing plus trend assertions on every
reconstructed experiment (small n to stay fast)."""

import pytest

from repro.harness import EXPERIMENTS, Table, run_experiment
from repro.harness.experiments import (
    fig1_latency,
    fig2_queue_depth,
    fig4_banks,
    fig5_ablation,
    fig6_occupancy,
    table2_speedup,
    table3_cache,
    table4_lod,
)


class TestTable:
    def test_add_row_width_checked(self):
        t = Table("X", "t", ("a", "b"))
        with pytest.raises(ValueError):
            t.add_row(1)

    def test_text_rendering(self):
        t = Table("R-T9", "demo", ("name", "value"))
        t.add_row("alpha", 1.2345)
        t.note("a note")
        text = t.to_text()
        assert "R-T9" in text and "alpha" in text and "note" in text

    def test_column_and_row_map(self):
        t = Table("X", "t", ("k", "v"))
        t.add_row("a", 1)
        t.add_row("b", 2)
        assert t.column("v") == [1, 2]
        assert t.row_map("k")["b"] == ("b", 2)

    def test_csv_rendering(self):
        t = Table("R-T9", "demo", ("name", "value"))
        t.add_row("alpha", 1.25)
        t.note("a note")
        csv_text = t.to_csv()
        lines = csv_text.splitlines()
        assert lines[0] == "# [R-T9] demo"
        assert lines[1] == "# note: a note"
        assert lines[2] == "name,value"
        assert lines[3] == "alpha,1.25"


class TestRegistry:
    def test_all_ten_experiments_registered(self):
        assert sorted(EXPERIMENTS) == [
            "R-F1", "R-F2", "R-F3", "R-F4", "R-F5", "R-F6", "R-F7", "R-F8",
            "R-F9",
            "R-T1", "R-T2", "R-T3", "R-T4", "R-T5", "R-T6", "R-T7",
        ]

    def test_unknown_experiment(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            run_experiment("R-T99")


class TestTrends:
    """Each reconstructed experiment must reproduce its expected *shape*
    (see DESIGN.md); these assertions are the committed claims."""

    def test_t2_streaming_speedups(self):
        t = table2_speedup(n=64)
        rows = t.row_map("kernel")
        speedup_col = list(t.columns).index("speedup")
        for name in ("hydro", "daxpy", "first_diff"):
            assert rows[name][speedup_col] > 3.0
        # every kernel at least breaks even
        assert min(t.column("speedup")) >= 1.0

    def test_t3_cache_narrows_but_does_not_close_gap_for_streams(self):
        t = table3_cache(n=64, cache_sizes=(256,), kernels=("hydro",))
        row = t.rows[0]
        cols = list(t.columns)
        sma = row[cols.index("sma_cycles")]
        uncached = row[cols.index("scalar_cycles")]
        cached = row[cols.index("cache256w")]
        assert cached < uncached          # the cache helps...
        assert sma < cached               # ...but SMA still wins streaming

    def test_t4_lod_dominates_computed_gather(self):
        t = table4_lod(n=64, kernels=("computed_gather", "hydro"))
        rows = t.row_map("kernel")
        frac = list(t.columns).index("lod_frac")
        assert rows["computed_gather"][frac] > 0.3
        assert rows["hydro"][frac] == 0

    def test_f1_latency_tolerance(self):
        t = fig1_latency(n=64, latencies=(2, 8, 24), kernels=("daxpy",))
        speedups = t.column("daxpy")
        assert speedups[0] < speedups[1] < speedups[2]

    def test_f2_queue_depth_saturates(self):
        t = fig2_queue_depth(n=64, depths=(1, 8, 32), kernels=("daxpy",))
        cycles = t.column("daxpy")
        assert cycles[0] > cycles[1]          # depth 1 hurts
        assert cycles[1] == cycles[2]         # saturation by depth 8

    def test_f4_bank_aliasing(self):
        t = fig4_banks(n=64, banks=(1, 8), kernels=("daxpy", "stride8_copy"))
        by_banks = t.row_map("banks")
        cols = list(t.columns)
        daxpy = cols.index("daxpy")
        s8 = cols.index("stride8_copy")
        # unit stride scales with banks; stride-8 stays collapsed
        assert by_banks[8][daxpy] > 2.5 * by_banks[1][daxpy]
        assert by_banks[8][s8] < 1.5 * by_banks[1][s8]

    def test_f5_descriptors_beat_per_element(self):
        t = fig5_ablation(n=64, kernels=("daxpy", "hydro"))
        assert min(t.column("benefit")) > 1.2

    def test_f6_occupancy_profile(self):
        t = fig6_occupancy("hydro", n=128, buckets=16)
        occ = t.column("load_occupancy")
        assert len(occ) >= 8
        assert max(occ) > 2.0   # queues actually fill mid-run


class TestRunnerChecks:
    def test_compare_spec_verifies_against_reference(self):
        from repro.harness import compare_spec
        from repro.kernels import get_kernel
        run = compare_spec(get_kernel("daxpy"), n=32)
        assert run.speedup > 1
        assert run.sma.cycles > 0 and run.scalar.cycles > 0
