"""Fault injection and sweep-harness recovery (repro.harness.faults).

Each test injects one of the failures the harness claims to survive —
corrupt cache entries, killed workers, a killed driver, hung jobs,
transient memory faults — and asserts the recovery contract: the sweep
completes (or resumes) with results identical to a fault-free run, and
the result cache never serves a faulty entry for a clean job.
"""

import json
import logging
import os
import signal
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.config import FaultConfig, MemoryConfig, QueueConfig, SMAConfig
from repro.errors import KernelError, SimulationError
from repro.harness import (
    Job,
    SweepError,
    harness_policy,
    run_jobs,
)
from repro.harness.faults import FaultSpec, apply_to_jobs
from repro.harness.parallel import job_key

REPO = Path(__file__).resolve().parent.parent


def _jobs():
    return [
        Job("sma", "daxpy", 24),
        Job("scalar", "daxpy", 24),
        Job("sma", "hydro", 24),
        Job("sma-nostream", "daxpy", 24),
    ]


class TestFaultSpec:
    def test_parse_modes(self):
        assert FaultSpec.parse("worker-kill").mode == "worker-kill"
        spec = FaultSpec.parse("mem-error:0.25")
        assert spec.mode == "mem-error" and spec.value == 0.25
        assert FaultSpec.parse("driver-kill:3").value == 3.0

    def test_parse_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="unknown fault mode"):
            FaultSpec.parse("disk-on-fire")

    def test_parse_rejects_bad_probability(self):
        with pytest.raises(ValueError, match="probability"):
            FaultSpec.parse("mem-error:1.5")

    def test_constructor_rejects_unparsed_text(self):
        # the bug this guards: FaultSpec("mem-error:0.1") silently
        # becoming a spec no hook recognizes
        with pytest.raises(ValueError, match="unknown fault mode"):
            FaultSpec("mem-error:0.1")


class TestCacheIntegrity:
    def test_corrupt_and_empty_entries_quarantined(self, tmp_path,
                                                   caplog):
        jobs = _jobs()
        clean = run_jobs(jobs, cache_dir=tmp_path)
        (tmp_path / f"{job_key(jobs[0])}.json").write_text("{trunc")
        (tmp_path / f"{job_key(jobs[1])}.json").write_text("")
        with caplog.at_level(logging.WARNING, logger="repro.harness"):
            with harness_policy() as stats:
                again = run_jobs(jobs, cache_dir=tmp_path)
        assert again == clean
        assert stats.quarantined == 2
        assert stats.hits == 2 and stats.executed == 2
        assert len(list(tmp_path.glob("*.json.corrupt"))) == 2
        assert sum("quarantined corrupt cache entry" in rec.message
                   for rec in caplog.records) == 2
        # quarantined entries are out of the way: a third sweep is all
        # hits again
        with harness_policy() as stats:
            run_jobs(jobs, cache_dir=tmp_path)
        assert stats.hits == len(jobs) and stats.quarantined == 0

    def test_flushes_are_atomic_renames(self, tmp_path):
        run_jobs(_jobs(), cache_dir=tmp_path)
        assert not list(tmp_path.glob("*.tmp"))
        for entry in tmp_path.glob("*.json"):
            json.loads(entry.read_text())  # every entry is whole

    def test_serial_failure_keeps_earlier_flushes(self, tmp_path):
        jobs = _jobs()[:2] + [Job("sma", "no_such_kernel", 24)]
        with pytest.raises(KernelError, match="unknown kernel"):
            run_jobs(jobs, cache_dir=tmp_path, retries=0)
        # the two jobs that finished before the crash are on disk
        assert len(list(tmp_path.glob("*.json"))) == 2
        with harness_policy() as stats:
            run_jobs(jobs[:2], cache_dir=tmp_path)
        assert stats.hits == 2 and stats.executed == 0

    def test_parallel_flushes_as_results_land(self, tmp_path):
        # a pool sweep that dies mid-way must leave the finished jobs
        # cached: hang one job until its timeout aborts the sweep and
        # check the other worker's results reached disk anyway
        spec = FaultSpec("sleep", 30.0,
                         token_path=str(tmp_path / "tok"))
        with pytest.raises(SweepError):
            run_jobs(_jobs(), workers=2, cache_dir=tmp_path,
                     timeout=2.0, retries=0, inject=spec)
        flushed = list(tmp_path.glob("*.json"))
        assert 0 < len(flushed) < len(_jobs())


class TestWorkerRecovery:
    def test_worker_kill_retried_to_completion(self, tmp_path):
        clean = run_jobs(_jobs())
        spec = FaultSpec("worker-kill",
                         token_path=str(tmp_path / "tok"))
        with harness_policy(inject=spec) as stats:
            got = run_jobs(_jobs(), workers=2,
                           cache_dir=tmp_path / "cache", retries=2)
        assert got == clean
        assert stats.respawns >= 1 and stats.retried >= 1
        # resume executes nothing: every result was flushed
        with harness_policy() as stats:
            run_jobs(_jobs(), workers=2, cache_dir=tmp_path / "cache")
        assert stats.executed == 0 and stats.hits == len(_jobs())

    def test_worker_kill_without_retries_raises(self, tmp_path):
        spec = FaultSpec("worker-kill",
                         token_path=str(tmp_path / "tok"))
        with pytest.raises(SweepError, match="worker"):
            run_jobs(_jobs(), workers=2, retries=0, inject=spec)

    def test_hung_job_times_out_and_retries(self, tmp_path):
        clean = run_jobs(_jobs())
        spec = FaultSpec("sleep", 30.0,
                         token_path=str(tmp_path / "tok"))
        with harness_policy(inject=spec) as stats:
            got = run_jobs(_jobs(), workers=2, timeout=1.0, retries=2)
        assert got == clean
        assert stats.retried >= 1

    def test_hung_job_without_retries_raises(self, tmp_path):
        spec = FaultSpec("sleep", 30.0,
                         token_path=str(tmp_path / "tok"))
        with pytest.raises(SweepError, match="timed out"):
            run_jobs(_jobs(), workers=2, timeout=1.0, retries=0,
                     inject=spec)


_DRIVER = textwrap.dedent("""
    import sys
    from repro.harness import run_jobs, harness_policy, Job
    from repro.harness.faults import FaultSpec

    cache, kill = sys.argv[1], sys.argv[2] == "kill"
    jobs = [
        Job("sma", "daxpy", 24),
        Job("scalar", "daxpy", 24),
        Job("sma", "hydro", 24),
        Job("sma-nostream", "daxpy", 24),
    ]
    inject = (FaultSpec("driver-kill", 2.0, token_path=cache + "/.tok")
              if kill else None)
    with harness_policy(inject=inject) as stats:
        run_jobs(jobs, cache_dir=cache)
    print(f"executed={stats.executed} hits={stats.hits}")
""")


class TestKillResume:
    def _drive(self, cache, mode):
        env = dict(os.environ, PYTHONPATH=str(REPO / "src"))
        return subprocess.run(
            [sys.executable, "-c", _DRIVER, str(cache), mode],
            capture_output=True, text=True, env=env, timeout=300,
        )

    def test_driver_killed_then_resumed(self, tmp_path):
        clean = run_jobs(_jobs())
        killed = self._drive(tmp_path, "kill")
        assert killed.returncode == -signal.SIGKILL, killed.stderr
        # died after exactly two flushes: both entries whole on disk
        entries = list(tmp_path.glob("*.json"))
        assert len(entries) == 2
        for entry in entries:
            json.loads(entry.read_text())
        resumed = self._drive(tmp_path, "resume")
        assert resumed.returncode == 0, resumed.stderr
        assert "executed=2 hits=2" in resumed.stdout
        # and the resumed cache serves results identical to a clean run
        with harness_policy() as stats:
            got = run_jobs(_jobs(), cache_dir=tmp_path)
        assert got == clean
        assert stats.hits == len(_jobs()) and stats.executed == 0


class TestMemError:
    def _cfg(self, **faults):
        mem = MemoryConfig(latency=8, bank_busy=4)
        return SMAConfig(memory=mem, queues=QueueConfig(),
                         faults=FaultConfig(**faults))

    def test_apply_rewrites_cache_keys(self):
        jobs = _jobs()
        faulted = apply_to_jobs(jobs, FaultSpec.parse("mem-error:0.1"))
        for job, fake in zip(jobs, faulted):
            if job.machine == "scalar":
                assert fake == job  # scalar machine has no banked memory
            else:
                assert fake.sma_config.faults.reject_prob == 0.1
                assert job_key(fake) != job_key(job)

    def test_faulty_sweep_does_not_poison_the_cache(self, tmp_path):
        jobs = _jobs()
        spec = FaultSpec.parse("mem-error:0.1")
        with harness_policy(inject=spec):
            run_jobs(jobs, cache_dir=tmp_path)
        with harness_policy() as stats:
            run_jobs(jobs, cache_dir=tmp_path)
        # only the scalar job's key is untouched by the fault rewrite
        assert stats.hits == 1 and stats.executed == 3

    def test_rejects_perturb_timing_not_results(self):
        # check=True verifies outputs word-exact against the reference:
        # transient rejects must never change what the machine computes
        res = run_jobs(
            [Job("sma", "daxpy", 32, sma_config=self._cfg(
                reject_prob=0.2, seed=7), check=True)]
        )[0]
        assert res["cycles"] > 0

    def test_injected_rejects_are_counted(self):
        from repro.core import SMAMachine
        from repro.harness.runner import _fit_memory, _load_inputs
        from repro.kernels import get_kernel, lower_sma
        from dataclasses import replace

        kernel, inputs = get_kernel("daxpy").instantiate(32)
        lowered = lower_sma(kernel)
        cfg = self._cfg(reject_prob=0.2, seed=7)
        cfg = replace(cfg, memory=_fit_memory(cfg.memory, lowered.layout))
        machine = SMAMachine(lowered.access_program,
                             lowered.execute_program, cfg)
        _load_inputs(machine, lowered.layout, kernel, inputs)
        # fast schedulers are downgraded under fault injection; asking
        # for event-horizon must still run correctly (as naive)
        result = machine.run(scheduler="event-horizon")
        assert machine.banked.fault_injection
        assert machine.banked.injected_rejects > 0
        assert result.cycles == machine.cycle

    def test_dropped_completion_reported_as_deadlock(self):
        from repro.core import SMAMachine
        from repro.harness.runner import _fit_memory, _load_inputs
        from repro.kernels import get_kernel, lower_sma
        from dataclasses import replace

        kernel, inputs = get_kernel("daxpy").instantiate(32)
        lowered = lower_sma(kernel)
        cfg = self._cfg(drop_completions=1)
        cfg = replace(cfg, memory=_fit_memory(cfg.memory, lowered.layout))
        machine = SMAMachine(lowered.access_program,
                             lowered.execute_program, cfg)
        _load_inputs(machine, lowered.layout, kernel, inputs)
        with pytest.raises(SimulationError, match="deadlock"):
            machine.run(deadlock_window=2_000)
