"""The job layer and parallel/cached sweep harness.

Covers: job execution for every machine kind, serial vs process-pool
equality (results must not depend on ``--jobs``), the on-disk result
cache (hits round-trip exactly, keys bind to the code version), and the
experiments' declarative job lists feeding identical tables through
either path.
"""

import json
import time

import numpy as np
import pytest

from repro.config import MemoryConfig, QueueConfig, ScalarConfig, SMAConfig
from repro.harness import experiments as exp
from repro.harness import parallel
from repro.harness.jobs import Job, run_job
from repro.harness.parallel import code_fingerprint, job_key, run_jobs

SMA_CFG, SCALAR_CFG = exp._configs(latency=8)


def _jobs():
    return [
        Job("sma", "daxpy", 32, sma_config=SMA_CFG, check=True),
        Job("scalar", "daxpy", 32, scalar_config=SCALAR_CFG, check=True),
        Job("sma-nostream", "hydro", 32, sma_config=SMA_CFG),
        Job("vector", "daxpy", 32, memory_config=SCALAR_CFG.memory),
        Job("vector", "tridiag", 32, memory_config=SCALAR_CFG.memory),
    ]


class TestJobs:
    def test_unknown_machine_rejected(self):
        with pytest.raises(ValueError, match="unknown job machine"):
            Job("warp-drive", "daxpy")

    def test_sma_job_reports_lowering_info(self):
        res = run_job(Job("sma", "daxpy", 32, sma_config=SMA_CFG))
        assert res["cycles"] > 0
        assert res["load_streams"] >= 2  # x and y streams
        assert res["memory_reads"] > 0

    def test_vector_job_reports_fallback(self):
        ok = run_job(Job("vector", "daxpy", 32))
        assert ok["vectorized"] is True and ok["cycles"] > 0
        rejected = run_job(Job("vector", "tridiag", 32))
        assert rejected["vectorized"] is False
        assert rejected["reason"]

    def test_cluster_job(self):
        res = run_job(
            Job("cluster", "daxpy", 32, sma_config=SMA_CFG, check=True,
                nodes=2)
        )
        assert len(res["node_cycles"]) == 2
        assert res["mean_slowdown"] >= 1.0

    def test_occupancy_job(self):
        res = run_job(
            Job("sma-occupancy", "daxpy", 64, sma_config=SMA_CFG,
                buckets=8)
        )
        assert res["cycles"] > 0
        assert res["load"] and res["store"]

    def test_check_catches_divergence(self, monkeypatch):
        from repro.harness import jobs as jobs_mod

        real = jobs_mod._reference.__wrapped__

        def poisoned(name, n, seed):
            golden = dict(real(name, n, seed))
            first = next(iter(golden))
            golden[first] = golden[first] + 1.0
            return golden

        monkeypatch.setattr(jobs_mod, "_reference", poisoned)
        with pytest.raises(AssertionError, match="diverges"):
            run_job(Job("sma", "daxpy", 32, sma_config=SMA_CFG,
                        check=True))

    def test_results_are_json_serializable(self):
        for job in _jobs():
            json.dumps(run_job(job))


class TestRunJobs:
    def test_serial_matches_parallel(self):
        jobs = _jobs()
        serial = run_jobs(jobs, workers=1)
        parallel = run_jobs(jobs, workers=2)
        assert serial == parallel

    def test_cache_round_trip(self, tmp_path):
        jobs = _jobs()
        first = run_jobs(jobs, workers=1, cache_dir=tmp_path)
        assert len(list(tmp_path.glob("*.json"))) == len(set(jobs))
        second = run_jobs(jobs, workers=1, cache_dir=tmp_path)
        assert first == second

    def test_cache_is_actually_used(self, tmp_path, monkeypatch):
        jobs = _jobs()
        first = run_jobs(jobs, workers=1, cache_dir=tmp_path)

        def _explode(_job):
            raise AssertionError("cache miss: run_job was called")

        monkeypatch.setattr("repro.harness.parallel.run_job", _explode)
        assert run_jobs(jobs, workers=1, cache_dir=tmp_path) == first

    def test_cache_key_binds_code_version(self):
        job = Job("sma", "daxpy", 32, sma_config=SMA_CFG)
        key = job_key(job)
        assert key != job_key(Job("sma", "daxpy", 64, sma_config=SMA_CFG))
        # same job, same code -> same key (stable across calls)
        assert key == job_key(Job("sma", "daxpy", 32, sma_config=SMA_CFG))
        assert len(code_fingerprint()) == 64  # sha256 hex over src/repro


class TestHarnessRegressions:
    def test_job_key_canonicalizes_numpy_scalars(self):
        # a sweep built from np.arange axes must hit the same cache
        # entries as one built from builtin ints
        base = Job(
            "sma", "daxpy", 32, seed=7,
            sma_config=SMAConfig(
                memory=MemoryConfig(latency=8, num_banks=8)
            ),
        )
        numpyish = Job(
            "sma", "daxpy", np.int64(32), seed=np.int64(7),
            sma_config=SMAConfig(
                memory=MemoryConfig(
                    latency=np.int64(8), num_banks=np.int32(8)
                )
            ),
        )
        assert isinstance(numpyish.n, int)
        assert type(numpyish.sma_config.memory.latency) is int
        assert repr(numpyish) == repr(base)
        assert job_key(numpyish) == job_key(base)

    def test_fingerprint_cached_seedable_and_refreshable(self):
        original = code_fingerprint()
        try:
            # what the pool initializer does: seed the worker's cache
            # with the driver's value instead of rescanning src/repro
            parallel._pool_init(None, "f" * 64)
            assert code_fingerprint() == "f" * 64
            # a long-lived driver can force a rescan (the old lru_cache
            # could not be invalidated)
            assert code_fingerprint(refresh=True) == original
        finally:
            parallel._FINGERPRINT = original

    def test_pool_backoff_does_not_stall_other_jobs(self, tmp_path):
        # one poison job whose retry backs off for `backoff` seconds,
        # plus good jobs queued behind it: the good jobs' results must
        # land (flush to the cache) while the poison job is backing
        # off, not after.  The old harness slept the backoff inside the
        # completed-future loop, freezing submission and deadline
        # polling for every other job.
        backoff = 2.5
        jobs = [
            Job("sma", "no-such-kernel", 16),
            Job("sma", "daxpy", 16, sma_config=SMA_CFG),
            Job("scalar", "daxpy", 16, scalar_config=SCALAR_CFG),
            Job("vector", "daxpy", 16),
        ]
        from repro.errors import KernelError

        start = time.time()
        with pytest.raises(KernelError):
            run_jobs(
                jobs, workers=2, cache_dir=tmp_path,
                retries=1, backoff=backoff,
            )
        elapsed = time.time() - start
        flushed = list(tmp_path.glob("*.json"))
        assert len(flushed) == 3  # every good job landed
        latest = max(p.stat().st_mtime for p in flushed)
        assert latest - start < backoff - 0.5, (
            "good jobs flushed only after the poison job's backoff "
            "window — the driver slept instead of resubmitting"
        )
        # and the backoff itself was honored before the final attempt
        assert elapsed >= backoff

    def test_occupancy_job_honors_lod_variant(self):
        # _run_occupancy used to lower the plain program regardless of
        # job.lod_variant, so an occupancy job with lod_variant="addr"
        # silently simulated the wrong machine while its cache key
        # (which includes the field via repr(job)) claimed otherwise
        plain = run_job(
            Job("sma-occupancy", "pic_gather", 32, sma_config=SMA_CFG,
                buckets=8)
        )
        addr = run_job(
            Job("sma-occupancy", "pic_gather", 32, sma_config=SMA_CFG,
                buckets=8, lod_variant="addr")
        )
        assert plain != addr, (
            "occupancy trace identical across lod variants — the "
            "variant was dropped on the way to lower_sma"
        )
        # the LOD-heavy lowering round-trips every gather index through
        # the EP, so it must be strictly slower
        assert addr["cycles"] > plain["cycles"]
        branch = run_job(
            Job("sma-occupancy", "tridiag", 32, sma_config=SMA_CFG,
                buckets=8, lod_variant="branch")
        )
        plain_tridiag = run_job(
            Job("sma-occupancy", "tridiag", 32, sma_config=SMA_CFG,
                buckets=8)
        )
        assert branch != plain_tridiag

    def test_pool_flushes_completed_mates_of_terminal_failure(
        self, tmp_path, monkeypatch
    ):
        # two jobs complete in the same wait round: one success, one
        # terminal failure.  The failure used to raise out of the
        # completed-future loop before the success was recorded, so a
        # --resume rerun re-executed finished work.  A fake pool pins
        # the ordering: wait() hands back [failure, success], the worst
        # case for the old single-pass loop.
        import concurrent.futures as cf

        from repro.errors import KernelError
        from repro.harness import harness_policy

        class FakePool:
            def __init__(self, max_workers=None, initializer=None,
                         initargs=()):
                if initializer is not None:
                    initializer(*initargs)

            def submit(self, fn, job):
                future = cf.Future()
                try:
                    future.set_result(fn(job))
                except BaseException as exc:
                    future.set_exception(exc)
                return future

            def shutdown(self, wait=True, cancel_futures=False):
                pass

        def fake_wait(futures, timeout=None, return_when=None):
            # every inflight future is already done; order the failing
            # one first so charge() raises before the success is seen
            ordered = sorted(
                futures, key=lambda f: f.exception() is None
            )
            return ordered, set()

        monkeypatch.setattr(cf, "ProcessPoolExecutor", FakePool)
        monkeypatch.setattr(cf, "wait", fake_wait)

        good = Job("scalar", "daxpy", 16, scalar_config=SCALAR_CFG)
        bad = Job("sma", "no-such-kernel", 16)
        with harness_policy() as stats:
            with pytest.raises(KernelError):
                run_jobs([bad, good], workers=2, cache_dir=tmp_path,
                         retries=0)
        assert stats.executed == 1
        assert stats.flushed == 1
        flushed = list(tmp_path.glob("*.json"))
        assert len(flushed) == 1, (
            "the completed pool-mate of a terminal failure was dropped "
            "without being flushed"
        )
        assert flushed[0].name == job_key(good) + ".json"
        # and a resume run serves the good job from the cache
        with harness_policy() as stats:
            assert run_jobs([good], cache_dir=tmp_path)[0] == json.loads(
                flushed[0].read_text()
            )
        assert stats.executed == 0 and stats.hits == 1

    def test_batch_shard_failure_goes_through_charging_path(
        self, monkeypatch
    ):
        # a BrokenProcessPool out of a sharded batch worker used to
        # propagate without a retry charge or a stats.record_failure
        # entry; now it is charged and the sweep falls back to the
        # scalar path with the policy intact
        from concurrent.futures.process import BrokenProcessPool

        from repro import batch as batch_mod
        from repro.harness import harness_policy

        def exploding_run_batch(jobs, workers=1, on_result=None):
            raise BrokenProcessPool("batch shard worker died")

        monkeypatch.setattr(batch_mod, "run_batch", exploding_run_batch)
        jobs = [
            Job("sma", "daxpy", 16, sma_config=SMA_CFG),
            Job("scalar", "daxpy", 16, scalar_config=SCALAR_CFG),
        ]
        with harness_policy() as stats:
            results = run_jobs(jobs, backend="batch", retries=1,
                               backoff=0.0)
        assert results[0]["cycles"] > 0 and results[1]["cycles"] > 0
        assert stats.failures.get("BrokenProcessPool") == 1
        assert stats.retried == 1
        # fail-fast behavior is preserved when the budget is zero
        with harness_policy() as stats:
            with pytest.raises(BrokenProcessPool):
                run_jobs(jobs, backend="batch", retries=0)
        assert stats.failures.get("BrokenProcessPool") == 1
        assert stats.retried == 0


class TestSerialFailureHandling:
    def test_raising_kernel_records_exception_type(self):
        # the serial retry loop must both retry a genuinely raising job
        # and leave an audit trail of *what* raised in the sweep stats
        from repro.errors import KernelError
        from repro.harness import harness_policy

        with harness_policy() as stats:
            with pytest.raises(KernelError, match="unknown kernel"):
                run_jobs([Job("sma", "no-such-kernel", 16)],
                         retries=2, backoff=0.0)
        assert stats.failures == {"KernelError": 3}
        assert stats.retried == 2
        assert "KernelError×3" in stats.summary()

    @pytest.mark.parametrize("abort", [KeyboardInterrupt, SystemExit])
    def test_user_abort_propagates_without_retry(self, monkeypatch,
                                                 abort):
        # ctrl-C (or a SystemExit from a signal handler) must escape the
        # serial path immediately — not be swallowed and retried like an
        # ordinary job failure
        from repro.harness import harness_policy

        def boom(job):
            raise abort()

        monkeypatch.setattr(parallel, "run_job", boom)
        with harness_policy() as stats:
            with pytest.raises(abort):
                run_jobs([Job("sma", "daxpy", 16, sma_config=SMA_CFG)],
                         retries=3, backoff=0.0)
        assert stats.retried == 0
        assert stats.failures == {}


class TestExperimentsThroughJobs:
    def test_experiment_identical_serial_vs_parallel(self):
        kwargs = dict(n=16, depths=(1, 4), kernels=("daxpy",))
        serial = exp.fig2_queue_depth(**kwargs, jobs=1)
        parallel = exp.fig2_queue_depth(**kwargs, jobs=2)
        assert serial.to_csv() == parallel.to_csv()

    def test_experiment_identical_with_cache(self, tmp_path):
        kwargs = dict(
            n=16, latencies=(2, 8), kernels=("daxpy", "inner_product")
        )
        cold = exp.fig1_latency(**kwargs, cache_dir=str(tmp_path))
        assert list(tmp_path.glob("*.json"))
        warm = exp.fig1_latency(**kwargs, cache_dir=str(tmp_path))
        assert cold.to_csv() == warm.to_csv()

    def test_every_experiment_accepts_harness_kwargs(self):
        import inspect

        for name, fn in exp.EXPERIMENTS.items():
            params = inspect.signature(fn).parameters
            assert "jobs" in params and "cache_dir" in params, name
