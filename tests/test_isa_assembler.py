"""Assembler: syntax, labels, diagnostics."""

import pytest

from repro.errors import AssemblyError
from repro.isa import Imm, Op, Reg, assemble
from repro.isa.operands import lq


class TestBasics:
    def test_simple_program(self):
        prog = assemble("mov r1, #5\nhalt")
        assert len(prog) == 2
        assert prog[0].op is Op.MOV
        assert prog[0].dest == Reg(1)
        assert prog[0].srcs == (Imm(5),)

    def test_comments_and_blank_lines(self):
        prog = assemble(
            """
            ; a comment
            mov r1, #1   ; trailing comment

            halt
            """
        )
        assert len(prog) == 2

    def test_case_insensitive_mnemonics(self):
        prog = assemble("MOV r1, #1\nHALT")
        assert prog[0].op is Op.MOV

    def test_queue_operands(self):
        prog = assemble("add sdq0, lq0, lq1\nhalt", require_halt=False)
        assert prog[0].queue_sources() == (lq(0), lq(1))


class TestLabels:
    def test_forward_and_backward(self):
        prog = assemble(
            """
            jmp fwd
            top: nop
            fwd: beqz r1, top
            halt
            """
        )
        assert prog[0].branch_target() == 2
        assert prog[2].branch_target() == 1
        assert prog.labels == {"top": 1, "fwd": 2}

    def test_label_on_own_line(self):
        prog = assemble("top:\n  jmp top\n  halt")
        assert prog[0].branch_target() == 0

    def test_multiple_labels_one_target(self):
        prog = assemble("a: b: nop\njmp a\njmp b\nhalt")
        assert prog[1].branch_target() == 0
        assert prog[2].branch_target() == 0

    def test_duplicate_label(self):
        with pytest.raises(AssemblyError, match="duplicate"):
            assemble("x: nop\nx: halt")

    def test_undefined_label(self):
        with pytest.raises(AssemblyError, match="undefined"):
            assemble("jmp nowhere\nhalt")

    def test_label_colliding_with_mnemonic(self):
        with pytest.raises(AssemblyError, match="mnemonic"):
            assemble("add: nop\nhalt")


class TestDataDirective:
    def test_data_segments_collected(self):
        prog = assemble(".data 100, 1.5, 2.5\n.data 200, 7\nhalt")
        assert prog.data == ((100, (1.5, 2.5)), (200, (7.0,)))

    def test_data_staged_into_machines(self):
        from repro.baseline import ScalarMachine
        from repro.core import SMAMachine

        prog = assemble(".data 50, 3.25\nhalt")
        scalar = ScalarMachine(prog)
        assert scalar.memory.read(50) == 3.25
        sma = SMAMachine(prog, assemble("halt"))
        assert sma.memory.read(50) == 3.25

    def test_data_roundtrips_through_disassembler(self):
        from repro.isa import disassemble

        prog = assemble(".data 10, 1.0, -2.5\nhalt")
        again = assemble(disassemble(prog), require_halt=False)
        assert again.data == prog.data

    def test_unknown_directive(self):
        with pytest.raises(AssemblyError, match="unknown directive"):
            assemble(".org 100\nhalt")

    def test_data_needs_values(self):
        with pytest.raises(AssemblyError, match="at least one value"):
            assemble(".data 100\nhalt")

    def test_bad_base(self):
        with pytest.raises(AssemblyError, match="base"):
            assemble(".data -3, 1.0\nhalt")
        with pytest.raises(AssemblyError, match="base"):
            assemble(".data 1.5, 1.0\nhalt")


class TestDiagnostics:
    def test_unknown_mnemonic_with_line(self):
        with pytest.raises(AssemblyError, match="line 2"):
            assemble("nop\nfrobnicate r1\nhalt")

    def test_operand_count_error(self):
        with pytest.raises(AssemblyError, match="expects 3 operand"):
            assemble("add r1, r2\nhalt")

    def test_missing_halt(self):
        with pytest.raises(AssemblyError, match="no halt"):
            assemble("nop")

    def test_require_halt_false(self):
        assert len(assemble("nop", require_halt=False)) == 1

    def test_empty_operand(self):
        with pytest.raises(AssemblyError):
            assemble("add r1, , r2\nhalt")

    def test_numeric_branch_target_in_range(self):
        prog = assemble("jmp 1\nhalt")
        assert prog[0].branch_target() == 1

    def test_numeric_branch_target_out_of_range(self):
        with pytest.raises(AssemblyError, match="out of range"):
            assemble("jmp 99\nhalt")
