"""Binary encoding round-trips and error paths."""

import pytest

from repro.errors import EncodingError
from repro.isa import (
    EAQ,
    Imm,
    Label,
    Op,
    Reg,
    assemble,
    decode_instruction,
    decode_program,
    encode_instruction,
    encode_program,
    ins,
)
from repro.isa.operands import lq, sdq


def roundtrip(instr):
    decoded, offset = decode_instruction(encode_instruction(instr))
    assert offset == len(encode_instruction(instr))
    return decoded


class TestInstructionRoundTrip:
    @pytest.mark.parametrize(
        "instr",
        [
            ins(Op.HALT),
            ins(Op.NOP),
            ins(Op.ADD, Reg(1), Reg(2), Reg(3)),
            ins(Op.MOV, Reg(31), Imm(-123456789)),
            ins(Op.MOV, Reg(0), Imm(2.718281828)),
            ins(Op.STREAMLD, lq(7), Imm(1000), Imm(-1), Imm(64)),
            ins(Op.STREAMST, None, sdq(3), Reg(4), Imm(8), Imm(256)),
            ins(Op.SEL, Reg(1), Reg(2), Imm(0.5), Imm(1)),
            ins(Op.FROMQ, Reg(9), EAQ),
            ins(Op.JMP, None, Imm(12)),
            ins(Op.STORE, None, Reg(1), Imm(500), Imm(0)),
        ],
    )
    def test_roundtrip_identity(self, instr):
        assert roundtrip(instr) == instr

    def test_int_float_immediates_distinguished(self):
        assert isinstance(roundtrip(ins(Op.MOV, Reg(1), Imm(3))).srcs[0].value, int)
        assert isinstance(
            roundtrip(ins(Op.MOV, Reg(1), Imm(3.0))).srcs[0].value, float
        )

    def test_unresolved_label_rejected(self):
        with pytest.raises(EncodingError, match="label"):
            encode_instruction(ins(Op.JMP, None, Label("x")))

    def test_int64_overflow_rejected(self):
        with pytest.raises(EncodingError, match="int64"):
            encode_instruction(ins(Op.MOV, Reg(1), Imm(2**64)))


class TestProgramRoundTrip:
    def test_program(self):
        prog = assemble(
            """
            mov a1, #100
            streamld lq0, a1, #1, #32
            top: add sdq0, lq0, #1.5
            decbnz a2, top
            halt
            """
        )
        decoded = decode_program(encode_program(prog))
        assert decoded.instructions == prog.instructions

    def test_bad_magic(self):
        with pytest.raises(EncodingError, match="magic"):
            decode_program(b"XXXX\x00\x00\x00\x00")

    def test_truncated(self):
        data = encode_program(assemble("mov r1, #1\nhalt"))
        with pytest.raises(EncodingError):
            decode_program(data[:-4])

    def test_trailing_bytes(self):
        data = encode_program(assemble("halt"))
        with pytest.raises(EncodingError, match="trailing"):
            decode_program(data + b"\x00" * 8)
