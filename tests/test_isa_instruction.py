"""Instruction construction, shape validation, branch target handling."""

import pytest

from repro.errors import AssemblyError
from repro.isa import Imm, Instruction, Label, Op, Reg, ins
from repro.isa.operands import lq, sdq


class TestShapeValidation:
    def test_wrong_source_count(self):
        with pytest.raises(AssemblyError, match="2 source"):
            ins(Op.ADD, Reg(1), Reg(2))

    def test_missing_dest(self):
        with pytest.raises(AssemblyError, match="destination"):
            Instruction(Op.ADD, None, (Reg(1), Reg(2)))

    def test_unexpected_dest(self):
        with pytest.raises(AssemblyError, match="no destination"):
            Instruction(Op.STORE, Reg(1), (Reg(1), Reg(2), Imm(0)))

    def test_immediate_dest_rejected(self):
        with pytest.raises(AssemblyError, match="destination"):
            ins(Op.ADD, Imm(1), Reg(2), Reg(3))

    def test_branch_target_must_be_label_or_imm(self):
        with pytest.raises(AssemblyError, match="target"):
            ins(Op.JMP, None, Reg(3))

    def test_halt_takes_nothing(self):
        instr = ins(Op.HALT)
        assert instr.dest is None and instr.srcs == ()


class TestQueries:
    def test_queue_sources(self):
        instr = ins(Op.ADD, Reg(1), lq(0), lq(1))
        assert instr.queue_sources() == (lq(0), lq(1))

    def test_queue_dest(self):
        assert ins(Op.MOV, sdq(0), Reg(1)).queue_dest() == sdq(0)
        assert ins(Op.MOV, Reg(1), Reg(2)).queue_dest() is None

    def test_branch_target_unresolved_raises(self):
        instr = ins(Op.JMP, None, Label("somewhere"))
        with pytest.raises(AssemblyError, match="not resolved"):
            instr.branch_target()

    def test_with_target(self):
        instr = ins(Op.BEQZ, None, Reg(1), Label("x")).with_target(7)
        assert instr.branch_target() == 7

    def test_str(self):
        assert str(ins(Op.ADD, Reg(1), Reg(2), Imm(3))) == "add r1, r2, #3"
        assert str(ins(Op.HALT)) == "halt"


class TestImmutability:
    def test_frozen(self):
        instr = ins(Op.NOP)
        with pytest.raises(AttributeError):
            instr.op = Op.HALT
