"""Operand model: construction rules, parsing, printing."""

import pytest

from repro.isa import EAQ, EBQ, SAQ, Imm, Label, Queue, QueueSpace, Reg
from repro.isa.operands import iq, lq, parse_operand, sdq


class TestReg:
    def test_valid_range(self):
        assert Reg(0).index == 0
        assert Reg(31).index == 31

    @pytest.mark.parametrize("bad", [-1, 32, 100])
    def test_out_of_range(self, bad):
        with pytest.raises(ValueError):
            Reg(bad)

    def test_str(self):
        assert str(Reg(7)) == "r7"

    def test_hashable_equality(self):
        assert Reg(3) == Reg(3)
        assert len({Reg(3), Reg(3), Reg(4)}) == 2


class TestQueue:
    def test_singleton_spaces_reject_nonzero_index(self):
        for space in (QueueSpace.SAQ, QueueSpace.EAQ, QueueSpace.EBQ):
            with pytest.raises(ValueError):
                Queue(space, 1)

    def test_negative_index(self):
        with pytest.raises(ValueError):
            Queue(QueueSpace.LQ, -1)

    def test_str_forms(self):
        assert str(lq(0)) == "lq0"
        assert str(sdq(2)) == "sdq2"
        assert str(iq(1)) == "iq1"
        assert str(SAQ) == "saq"
        assert str(EAQ) == "eaq"
        assert str(EBQ) == "ebq"


class TestParseOperand:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("r5", Reg(5)),
            ("a12", Reg(12)),
            ("x0", Reg(0)),
            ("lq3", lq(3)),
            ("sdq1", sdq(1)),
            ("iq2", iq(2)),
            ("saq", SAQ),
            ("eaq", EAQ),
            ("ebq", EBQ),
            ("#42", Imm(42)),
            ("#-3", Imm(-3)),
            ("#2.5", Imm(2.5)),
            ("7", Imm(7)),
            ("0x10", Imm(16)),
            ("loop", Label("loop")),
            ("my_label", Label("my_label")),
        ],
    )
    def test_parses(self, text, expected):
        assert parse_operand(text) == expected

    def test_whitespace_stripped(self):
        assert parse_operand("  r3  ") == Reg(3)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            parse_operand("   ")

    def test_bad_immediate_rejected(self):
        with pytest.raises(ValueError):
            parse_operand("#notanumber")

    def test_int_vs_float_immediates_distinct(self):
        assert isinstance(parse_operand("#3").value, int)
        assert isinstance(parse_operand("#3.0").value, float)
