"""ProgramBuilder / Program behaviour and the disassembler."""

import pytest

from repro.errors import AssemblyError
from repro.isa import (
    Imm,
    Label,
    Op,
    ProgramBuilder,
    Reg,
    assemble,
    disassemble,
    ins,
)


class TestBuilder:
    def test_emit_returns_index(self):
        b = ProgramBuilder()
        assert b.op(Op.NOP) == 0
        assert b.op(Op.HALT) == 1

    def test_label_resolution(self):
        b = ProgramBuilder()
        b.label("top")
        b.op(Op.DECBNZ, Reg(1), Label("top"))
        b.op(Op.HALT)
        prog = b.finalize()
        assert prog[0].branch_target() == 0

    def test_label_at_end(self):
        b = ProgramBuilder()
        b.op(Op.JMP, None, Label("end"))
        b.op(Op.HALT)
        b.label("end")
        prog = b.finalize()
        assert prog[0].branch_target() == 2

    def test_missing_halt(self):
        b = ProgramBuilder("p")
        b.op(Op.NOP)
        with pytest.raises(AssemblyError, match="halt"):
            b.finalize()

    def test_label_on_non_branch_rejected(self):
        b = ProgramBuilder()
        b.emit(ins(Op.MOV, Reg(1), Label("oops")))
        b.op(Op.HALT)
        with pytest.raises(AssemblyError, match="non-branch"):
            b.finalize()

    def test_new_label_fresh(self):
        b = ProgramBuilder()
        b.label("loop_0")
        assert b.new_label("loop") != "loop_0"

    def test_listing_contains_labels(self):
        prog = assemble("top: nop\njmp top\nhalt")
        listing = prog.listing()
        assert "top:" in listing and "jmp" in listing


class TestDisassembler:
    @pytest.mark.parametrize(
        "source",
        [
            "mov r1, #5\nhalt",
            "top: add r1, r1, #1\ndecbnz r2, top\nhalt",
            "streamld lq0, a1, #1, #64\nstreamst sdq0, a2, #1, #64\nhalt",
            "jmp end\nnop\nend: halt",
            "mul x1, lq0, #2.5\nmov sdq0, x1\nbqnz 0\nhalt",
        ],
    )
    def test_reassembles_identically(self, source):
        prog = assemble(source, require_halt=False)
        text = disassemble(prog)
        again = assemble(text, require_halt=False)
        assert again.instructions == prog.instructions

    def test_branch_past_end_handled(self):
        # `jmp 2` with program length 2 targets the fall-off exit
        prog = assemble("jmp 2\nhalt")
        text = disassemble(prog)
        again = assemble(text, require_halt=False)
        assert again[0].op is Op.JMP
