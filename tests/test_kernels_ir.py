"""Kernel IR: construction rules, validation, traversal."""

import pytest

from repro.errors import KernelError
from repro.kernels import (
    Affine,
    ArrayDecl,
    Assign,
    BinOp,
    Cmp,
    Computed,
    Const,
    Indirect,
    Kernel,
    Loop,
    Reduce,
    Ref,
    Select,
    UnOp,
    expr_refs,
    loop_nest,
)


def aff(off=0, **coeffs):
    return Affine.of(off, **coeffs)


def simple_kernel(body, arrays=None):
    arrays = arrays or (ArrayDecl("x", 16), ArrayDecl("y", 16))
    return Kernel("k", arrays, body)


class TestAffine:
    def test_evaluate(self):
        a = aff(3, i=2, j=-1)
        assert a.evaluate({"i": 5, "j": 4}) == 9

    def test_coeff_lookup(self):
        a = aff(0, i=2)
        assert a.coeff("i") == 2
        assert a.coeff("j") == 0

    def test_shifted(self):
        assert aff(1, i=1).shifted(-2) == aff(-1, i=1)

    def test_zero_coeffs_dropped_by_at_helper(self):
        from repro.kernels.suite import at
        assert at("x", 5, i=0).index == aff(5)


class TestNodeValidation:
    def test_unknown_binop(self):
        with pytest.raises(KernelError):
            BinOp("**", Const(1), Const(2))

    def test_unknown_unop(self):
        with pytest.raises(KernelError):
            UnOp("sin", Const(1))

    def test_unknown_cmp(self):
        with pytest.raises(KernelError):
            Cmp(">", Const(1), Const(2))

    def test_indirect_subscript_must_be_affine(self):
        inner = Ref("x", Computed(Const(1)))
        with pytest.raises(KernelError):
            Indirect(inner)

    def test_reduce_target_must_be_affine(self):
        with pytest.raises(KernelError, match="affine"):
            Reduce("+", Ref("x", Indirect(Ref("y", aff(0, i=1)))), Const(1))

    def test_reduce_target_rejects_innermost_var(self):
        with pytest.raises(KernelError, match="innermost"):
            simple_kernel((Loop("i", 4, (
                Reduce("+", Ref("y", aff(0, i=1)), Ref("x", aff(0, i=1))),
            )),))

    def test_reduce_target_may_use_outer_var(self):
        inner = Loop("i", 4, (
            Reduce("+", Ref("y", aff(0, j=1)), Ref("x", aff(0, i=1, j=4))),
        ))
        simple_kernel((Loop("j", 2, (inner,)),),
                      arrays=(ArrayDecl("x", 16), ArrayDecl("y", 4)))

    def test_loop_count_positive(self):
        with pytest.raises(KernelError):
            Loop("i", 0, (Assign(Ref("x", aff(0, i=1)), Const(1)),))

    def test_loop_body_nonempty(self):
        with pytest.raises(KernelError):
            Loop("i", 4, ())

    def test_array_size_positive(self):
        with pytest.raises(KernelError):
            ArrayDecl("x", 0)


class TestKernelValidation:
    def test_undeclared_array(self):
        with pytest.raises(KernelError, match="undeclared"):
            simple_kernel((Loop("i", 4, (
                Assign(Ref("zzz", aff(0, i=1)), Const(1)),
            )),))

    def test_unbound_loop_var(self):
        with pytest.raises(KernelError, match="unbound"):
            simple_kernel((Loop("i", 4, (
                Assign(Ref("x", aff(0, j=1)), Const(1)),
            )),))

    def test_top_level_must_be_loops(self):
        with pytest.raises(KernelError, match="loops"):
            simple_kernel((Assign(Ref("x", aff(0)), Const(1)),))

    def test_depth_limit(self):
        inner = Loop("k", 2, (Assign(Ref("x", aff(0, k=1)), Const(1)),))
        mid = Loop("j", 2, (inner,))
        with pytest.raises(KernelError, match="deeper"):
            simple_kernel((Loop("i", 2, (mid,)),))

    def test_shadowed_var(self):
        inner = Loop("i", 2, (Assign(Ref("x", aff(0, i=1)), Const(1)),))
        with pytest.raises(KernelError, match="shadowed"):
            simple_kernel((Loop("i", 2, (inner,)),))

    def test_mixed_loop_and_statement_body(self):
        inner = Loop("j", 2, (Assign(Ref("x", aff(0, j=1)), Const(1)),))
        with pytest.raises(KernelError, match="not both"):
            simple_kernel((Loop("i", 2, (
                inner, Assign(Ref("x", aff(0, i=1)), Const(1)),
            )),))

    def test_duplicate_arrays(self):
        with pytest.raises(KernelError, match="duplicate"):
            Kernel("k", (ArrayDecl("x", 4), ArrayDecl("x", 4)),
                   (Loop("i", 2, (Assign(Ref("x", aff(0, i=1)), Const(1)),)),))


class TestTraversal:
    def test_expr_refs_descends_into_subscripts(self):
        expr = Ref("a", Indirect(Ref("b", aff(0, i=1))))
        names = [r.array for r in expr_refs(expr)]
        assert names == ["a", "b"]

    def test_expr_refs_computed(self):
        expr = Ref("a", Computed(BinOp("+", Ref("c", aff(0, i=1)), Const(1))))
        names = [r.array for r in expr_refs(expr)]
        assert names == ["a", "c"]

    def test_expr_refs_select(self):
        expr = Select(
            Cmp("<", Ref("x", aff(0, i=1)), Const(0)),
            Ref("y", aff(0, i=1)),
            Const(0),
        )
        assert [r.array for r in expr_refs(expr)] == ["x", "y"]

    def test_loop_nest(self):
        k = simple_kernel((
            Loop("i", 2, (Loop("j", 2, (
                Assign(Ref("x", aff(0, i=1, j=1)), Const(1)),
            )),)),
            Loop("k", 2, (Assign(Ref("y", aff(0, k=1)), Const(1)),)),
        ))
        nests = loop_nest(k)
        assert [tuple(l.var for l in nest) for nest in nests] == [
            ("i", "j"), ("k",),
        ]

    def test_pretty_roundtrip_smoke(self):
        k = simple_kernel((Loop("i", 4, (
            Assign(Ref("x", aff(0, i=1)),
                   BinOp("*", Ref("y", aff(0, i=1)), Const(2))),
        )),))
        text = k.pretty()
        assert "kernel k" in text and "x[i]" in text
