"""Kernel source-language front-end: parsing, classification, diagnostics,
and semantic equivalence with hand-built IR."""

import numpy as np
import pytest

from repro.kernels import (
    Affine,
    Computed,
    Indirect,
    Loop,
    ParseError,
    Reduce,
    Select,
    get_kernel,
    parse_kernel,
    run_reference,
)
from repro.harness.runner import run_on_scalar, run_on_sma


class TestParsingBasics:
    def test_minimal_kernel(self):
        k = parse_kernel("""
kernel copy(x[n], y[n]):
    for i in 0 .. n:
        y[i] = x[i]
""", n=8)
        assert k.name == "copy"
        assert [a.size for a in k.arrays] == [8, 8]
        loop = k.body[0]
        assert isinstance(loop, Loop)
        assert loop.count == 8 and loop.start == 0

    def test_size_expressions(self):
        k = parse_kernel("""
kernel sized(a[2 * n + 3], b[m - 1]):
    for i in 0 .. n:
        a[i] = b[i]
""", n=4, m=10)
        assert k.array("a").size == 11
        assert k.array("b").size == 9

    def test_loop_bounds(self):
        k = parse_kernel("""
kernel bounds(x[n + 1]):
    for i in 1 .. n + 1:
        x[i] = 1.0
""", n=5)
        loop = k.body[0]
        assert loop.start == 1 and loop.count == 5

    def test_comments_and_blanks(self):
        k = parse_kernel("""
# leading comment
kernel c(x[4]):      # trailing
    for i in 0 .. 4:

        x[i] = 2.0   # body comment
""")
        assert len(k.body[0].body) == 1

    def test_nested_loops(self):
        k = parse_kernel("""
kernel grid(a[n * 8], o[n * 8]):
    for j in 0 .. n:
        for i in 0 .. 8:
            o[j * 8 + i] = a[j * 8 + i]
""", n=4)
        outer = k.body[0]
        inner = outer.body[0]
        assert isinstance(inner, Loop)
        dest = inner.body[0].dest
        assert dest.index == Affine.of(0, j=8, i=1)


class TestSubscriptClassification:
    def test_affine_with_coefficients(self):
        k = parse_kernel("""
kernel s(x[3 * n], y[n]):
    for i in 0 .. n:
        y[i] = x[3 * i + 2]
""", n=4)
        ref = k.body[0].body[0].expr
        assert ref.index == Affine.of(2, i=3)

    def test_negative_stride(self):
        k = parse_kernel("""
kernel rev(x[n], y[n]):
    for i in 0 .. n:
        y[i] = x[n - 1 - i]
""", n=8)
        # n is a parse-time constant: n-1-i -> Affine(offset=7, i=-1)
        ref = k.body[0].body[0].expr
        assert ref.index == Affine.of(7, i=-1)

    def test_indirect(self):
        k = parse_kernel("""
kernel g(e[n], ix[n], y[n]):
    for i in 0 .. n:
        y[i] = e[ix[i]]
""", n=8)
        ref = k.body[0].body[0].expr
        assert isinstance(ref.index, Indirect)

    def test_computed(self):
        k = parse_kernel("""
kernel c(x[n], tab[16], y[n]):
    for i in 0 .. n:
        y[i] = tab[floor(x[i] * 7.0) % 16.0]
""", n=8)
        ref = k.body[0].body[0].expr
        assert isinstance(ref.index, Computed)

    def test_select_parsed(self):
        k = parse_kernel("""
kernel s(x[n], y[n]):
    for i in 0 .. n:
        y[i] = select(x[i] < 0.5, x[i], 0.0)
""", n=4)
        assert isinstance(k.body[0].body[0].expr, Select)

    def test_reduction_forms(self):
        k = parse_kernel("""
kernel r(x[n], out[1], big[1]):
    for i in 0 .. n:
        out[0] += x[i]
        big[0] max= abs(x[i]) init 0
""", n=4)
        stmts = k.body[0].body
        assert isinstance(stmts[0], Reduce) and stmts[0].op == "+"
        assert isinstance(stmts[1], Reduce) and stmts[1].op == "max"


class TestDiagnostics:
    def test_reports_line_numbers(self):
        with pytest.raises(ParseError, match="line 3"):
            parse_kernel("""kernel k(x[4]):
    for i in 0 .. 4:
        x[i] = +
""")

    def test_missing_parameter(self):
        with pytest.raises(ParseError, match="size parameter"):
            parse_kernel("kernel k(x[n]):\n    for i in 0 .. n:\n        x[i] = 1.0")

    def test_loop_var_as_value_rejected(self):
        with pytest.raises(ParseError, match="as a value"):
            parse_kernel("""
kernel k(x[4]):
    for i in 0 .. 4:
        x[i] = i
""")

    def test_empty_range(self):
        with pytest.raises(ParseError, match="empty loop range"):
            parse_kernel("""
kernel k(x[4]):
    for i in 4 .. 4:
        x[i] = 1.0
""")

    def test_shadowed_loop_var(self):
        with pytest.raises(ParseError, match="shadows"):
            parse_kernel("""
kernel k(x[4]):
    for i in 0 .. 2:
        for i in 0 .. 2:
            x[i] = 1.0
""")

    def test_bad_indent(self):
        with pytest.raises(ParseError, match="indent"):
            parse_kernel("""
kernel k(x[4], y[4]):
    for i in 0 .. 4:
        x[i] = 1.0
          y[i] = 2.0
""")

    def test_reduction_target_rejects_innermost_var(self):
        from repro.errors import KernelError

        with pytest.raises(KernelError, match="innermost"):
            parse_kernel("""
kernel k(x[4], out[4]):
    for i in 0 .. 4:
        out[i] += x[i]
""")

    def test_per_row_reduction_parses_and_runs(self):
        import numpy as np
        from repro.kernels import run_reference
        from repro.harness.runner import run_on_sma

        kernel = parse_kernel("""
kernel matvec(a[r * 8], x[8], y[r]):
    for j in 0 .. r:
        for i in 0 .. 8:
            y[j] += a[j * 8 + i] * x[i]
""", r=4)
        rng = np.random.default_rng(3)
        inputs = {"a": rng.random(32), "x": rng.random(8),
                  "y": np.zeros(4)}
        golden = run_reference(kernel, inputs)
        run = run_on_sma(kernel, inputs)
        np.testing.assert_array_equal(run.outputs["y"], golden["y"])

    def test_select_needs_comparison(self):
        with pytest.raises(ParseError, match="comparison"):
            parse_kernel("""
kernel k(x[4], y[4]):
    for i in 0 .. 4:
        y[i] = select(x[i], 1.0, 2.0)
""")

    def test_trailing_tokens(self):
        with pytest.raises(ParseError, match="trailing"):
            parse_kernel("""
kernel k(x[4]):
    for i in 0 .. 4:
        x[i] = 1.0 2.0
""")

    def test_unexpected_character(self):
        with pytest.raises(ParseError, match="unexpected character"):
            parse_kernel("kernel k(x[4]):\n    for i in 0 .. 4:\n        x[i] = @")


SUITE_SOURCES = {
    "hydro": """
kernel hydro(x[n], y[n], z[n + 11]):
    for k in 0 .. n:
        x[k] = 0.84 + y[k] * (1.1 * z[k + 10] + 0.37 * z[k + 11])
""",
    "daxpy": """
kernel daxpy(x[n], y[n]):
    for i in 0 .. n:
        y[i] = 2.5 * x[i] + y[i]
""",
    "tridiag": """
kernel tridiag(x[n + 1], y[n + 1], z[n + 1]):
    for i in 1 .. n + 1:
        x[i] = z[i] * (y[i] - x[i - 1])
""",
    "inner_product": """
kernel inner_product(x[n], z[n], out[1]):
    for k in 0 .. n:
        out[0] += z[k] * x[k]
""",
    "pic_gather": """
kernel pic_gather(vx[n], e[n], ix[n]):
    for i in 0 .. n:
        vx[i] = vx[i] + e[ix[i]]
""",
    "threshold": """
kernel threshold(x[n], y[n]):
    for i in 0 .. n:
        y[i] = select(0.5 < x[i], x[i], 0.0)
""",
    "max_abs": """
kernel max_abs(x[n], out[1]):
    for i in 0 .. n:
        out[0] max= abs(x[i]) init 0
""",
    "scale_shift": """
kernel scale_shift(x[n], y[n]):
    for i in 0 .. n:
        y[i] = 3.0 * x[i] + 1.0
""",
    "first_diff": """
kernel first_diff(x[n], y[n + 1]):
    for i in 0 .. n:
        x[i] = y[i + 1] - y[i]
""",
    "saxpy_strided": """
kernel saxpy_strided(x[2 * n], y[2 * n]):
    for i in 0 .. n:
        y[2 * i] = 1.5 * x[2 * i] + y[2 * i]
""",
    "stride8_copy": """
kernel stride8_copy(x[8 * n], y[8 * n]):
    for i in 0 .. n:
        y[8 * i] = 2.0 * x[8 * i]
""",
    "reverse_copy": """
kernel reverse_copy(x[n], y[n]):
    for i in 0 .. n:
        y[i] = 1.0 * x[n - 1 - i]
""",
    "conv4": """
kernel conv4(x[n + 3], y[n]):
    for i in 0 .. n:
        y[i] = (0.25 * x[i] + 0.5 * x[i + 1]) + (0.2 * x[i + 2] + 0.05 * x[i + 3])
""",
    "integrate": """
kernel integrate(px[n]):
    for i in 0 .. n:
        px[i] = 0.1 + px[i] * (0.75 + 0.2 * px[i])
""",
    "first_sum": """
kernel first_sum(x[n + 1], y[n + 1]):
    for i in 1 .. n + 1:
        x[i] = x[i - 1] + y[i]
""",
    "linear_rec": """
kernel linear_rec(w[n + 1], b[n + 1], x[n + 1]):
    for i in 1 .. n + 1:
        w[i] = w[i - 1] * b[i] + x[i]
""",
    "strided_dot": """
kernel strided_dot(x[5 * n], z[5 * n], out[1]):
    for k in 0 .. n:
        out[0] += z[5 * k] * x[5 * k]
""",
    "aos_sum": """
kernel aos_sum(x[3 * n], out[1]):
    for i in 0 .. n:
        out[0] += x[3 * i] * x[3 * i + 1] + x[3 * i + 2]
""",
    "count_above": """
kernel count_above(x[n], out[1]):
    for i in 0 .. n:
        out[0] += select(0.5 < x[i], 1.0, 0.0)
""",
    "clip": """
kernel clip(x[n], lo[n], hi[n], y[n]):
    for i in 0 .. n:
        y[i] = min(max(x[i], lo[i]), hi[i])
""",
    "wave1d": """
kernel wave1d(u[n + 2], uold[n + 2], unew[n + 2]):
    for i in 1 .. n + 1:
        unew[i] = (2.0 * u[i] - uold[i]) + 0.25 * ((u[i + 1] - 2.0 * u[i]) + u[i - 1])
""",
    "pic_scatter": """
kernel pic_scatter(rho[n], w[n], ir[n]):
    for i in 0 .. n:
        rho[ir[i]] = rho[ir[i]] + 0.8 * w[i]
""",
    "field_interp": """
kernel field_interp(x[n], y[n], z[n], e[n], ix[n]):
    for i in 0 .. n:
        z[i] = x[i] * e[ix[i]] + y[i]
""",
    "computed_gather": """
kernel computed_gather(x[n], tab[64], y[n]):
    for i in 0 .. n:
        y[i] = tab[floor((x[i] * 997.0) % 64.0)]
""",
}


NEST_SOURCES = {
    # 2-deep nests need the row geometry the builders use; sizes are
    # expressed through the same parameters
    "stencil2d": ("""
kernel stencil2d(a[rows * 34], out[rows * 34]):
    for j in 0 .. rows:
        for i in 0 .. 32:
            out[j * 34 + i + 1] = 0.3 * a[j * 34 + i] + (0.4 * a[j * 34 + i + 1] + 0.3 * a[j * 34 + i + 2])
""", lambda n: {"rows": max(n // 32, 2)}),
    "hydro2d": ("""
kernel hydro2d(zp[rows * 33], za[rows * 33], zb[rows * 33]):
    for j in 0 .. rows:
        for i in 0 .. 32:
            za[j * 33 + i] = 0.5 * (zp[j * 33 + i] + zp[j * 33 + i + 1])
            zb[j * 33 + i] = zp[j * 33 + i + 1] - zp[j * 33 + i]
""", lambda n: {"rows": max(n // 32, 2)}),
    "matvec": ("""
kernel matvec(a[rows * 16], x[16], y[rows]):
    for j in 0 .. rows:
        for i in 0 .. 16:
            y[j] += a[j * 16 + i] * x[i]
""", lambda n: {"rows": max(n // 16, 2)}),
    "row_max": ("""
kernel row_max(a[rows * 16], m[rows]):
    for j in 0 .. rows:
        for i in 0 .. 16:
            m[j] max= abs(a[j * 16 + i]) init 0
""", lambda n: {"rows": max(n // 16, 2)}),
}


@pytest.mark.parametrize("name", sorted(NEST_SOURCES))
def test_nested_source_matches_builtin_kernel(name):
    n = 64
    spec = get_kernel(name)
    _, inputs = spec.instantiate(n)
    source, params = NEST_SOURCES[name]
    parsed = parse_kernel(source, **params(n))
    golden = run_reference(parsed, inputs)
    builtin_kernel, _ = spec.instantiate(n)
    builtin_golden = run_reference(builtin_kernel, inputs)
    for arr in golden:
        np.testing.assert_array_equal(golden[arr], builtin_golden[arr])
    sma = run_on_sma(parsed, inputs)
    for arr in golden:
        np.testing.assert_array_equal(sma.outputs[arr], golden[arr])


@pytest.mark.parametrize("name", sorted(SUITE_SOURCES))
def test_source_version_matches_builtin_kernel(name):
    """Kernels rewritten in the source language are semantically identical
    to their hand-built IR versions, end to end on both machines."""
    n = 24
    spec = get_kernel(name)
    _, inputs = spec.instantiate(n)
    parsed = parse_kernel(SUITE_SOURCES[name], n=n)
    golden = run_reference(parsed, inputs)
    builtin_kernel, _ = spec.instantiate(n)
    builtin_golden = run_reference(builtin_kernel, inputs)
    for arr in golden:
        np.testing.assert_array_equal(golden[arr], builtin_golden[arr])
    sma = run_on_sma(parsed, inputs)
    scalar = run_on_scalar(parsed, inputs)
    for arr in golden:
        np.testing.assert_array_equal(sma.outputs[arr], golden[arr])
        np.testing.assert_array_equal(scalar.outputs[arr], golden[arr])


class TestParserRobustness:
    """The parser must fail *cleanly* (ParseError/KernelError) on any
    input — never with an internal exception."""

    from hypothesis import given, settings, strategies as st

    @settings(max_examples=150, deadline=None)
    @given(st.text(
        alphabet=st.sampled_from(
            list("kernelforin.+-*/%()[]:=<>, \n\t0123456789abxyz_#")
        ),
        max_size=160,
    ))
    def test_garbage_never_crashes(self, source):
        from repro.errors import KernelError

        try:
            parse_kernel(source, n=4)
        except KernelError:
            pass  # ParseError subclasses KernelError

    @settings(max_examples=60, deadline=None)
    @given(st.text(max_size=60))
    def test_arbitrary_unicode_never_crashes(self, source):
        from repro.errors import KernelError

        try:
            parse_kernel(source, n=4)
        except KernelError:
            pass
