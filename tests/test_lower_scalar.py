"""Scalar code generator: structure and correctness properties."""

import numpy as np
import pytest

from repro.errors import LoweringError
from repro.isa import Op
from repro.kernels import (
    ArrayDecl,
    Assign,
    BinOp,
    Computed,
    Const,
    Kernel,
    Loop,
    get_kernel,
    lower_scalar,
    run_reference,
)
from repro.kernels.suite import at, c
from repro.harness.runner import run_on_scalar


class TestProgramShape:
    def test_loop_closed_with_decbnz(self):
        kernel, _ = get_kernel("daxpy").instantiate(16)
        prog = lower_scalar(kernel).program
        assert sum(1 for i in prog if i.op is Op.DECBNZ) == 1
        assert prog.instructions[-1].op is Op.HALT

    def test_strength_reduction_no_mul_in_1d_loop(self):
        # a simple 1-D kernel needs no index multiplies at all
        kernel, _ = get_kernel("daxpy").instantiate(16)
        prog = lower_scalar(kernel).program
        assert not any(i.op is Op.MUL and isinstance(i.srcs[0].value, int)
                       if hasattr(i.srcs[0], "value") else False
                       for i in prog if i.op is Op.MUL and not i.srcs)

    def test_memory_traffic_counts(self):
        n = 16
        kernel, inputs = get_kernel("daxpy").instantiate(n)
        run = run_on_scalar(kernel, inputs)
        # x load + y load + y store per element (CSE keeps y to one load)
        assert run.result.loads == 2 * n
        assert run.result.stores == n

    def test_cse_single_load_for_repeated_ref(self):
        n = 8
        kernel, inputs = get_kernel("integrate").instantiate(n)
        run = run_on_scalar(kernel, inputs)
        # px[i] used twice but loaded once
        assert run.result.loads == n

    def test_layout_shared_with_reference(self):
        kernel, _ = get_kernel("hydro").instantiate(8)
        lowered = lower_scalar(kernel)
        assert lowered.layout.base("x") == 16
        assert lowered.layout.base("y") == 24
        assert lowered.layout.base("z") == 32


class TestUnsupported:
    def test_computed_store_rejected(self):
        kernel = Kernel(
            "bad",
            (ArrayDecl("a", 8), ArrayDecl("b", 8)),
            (Loop("i", 8, (
                Assign(
                    # store target with computed subscript
                    type(at("a"))("a", Computed(at("b", i=1))),
                    Const(1.0),
                ),
            )),),
        )
        with pytest.raises(LoweringError, match="computed store"):
            lower_scalar(kernel)


class TestCorrectnessOnHandBuiltKernels:
    def test_two_statement_raw_within_iteration(self):
        """statement 2 reads what statement 1 wrote — sequential machine
        must honour it (the SMA lowering rejects this, scalar must not)."""
        kernel = Kernel(
            "raw",
            (ArrayDecl("a", 8), ArrayDecl("b", 8)),
            (Loop("i", 8, (
                Assign(at("a", i=1), BinOp("*", at("b", i=1), c(2.0))),
                Assign(at("b", i=1), BinOp("+", at("a", i=1), c(1.0))),
            )),),
        )
        rng = np.random.default_rng(7)
        inputs = {"a": np.zeros(8), "b": rng.uniform(0.1, 1, 8)}
        golden = run_reference(kernel, inputs)
        run = run_on_scalar(kernel, inputs)
        for name in ("a", "b"):
            np.testing.assert_array_equal(run.outputs[name], golden[name])

    def test_outer_var_used_in_inner_pointer(self):
        kernel, inputs = get_kernel("stencil2d").instantiate(64)
        golden = run_reference(kernel, inputs)
        run = run_on_scalar(kernel, inputs)
        np.testing.assert_array_equal(run.outputs["out"], golden["out"])

    def test_register_high_water_within_budget(self):
        for name in ("state_eqn", "conv4", "stencil2d"):
            kernel, _ = get_kernel(name).instantiate(8)
            lower_scalar(kernel)  # raises LoweringError if out of registers
