"""SMA code generator: stream extraction, hazards, resource validation."""

import numpy as np
import pytest

from repro.errors import LoweringError
from repro.isa import Op
from repro.kernels import (
    ArrayDecl,
    Assign,
    BinOp,
    Kernel,
    Loop,
    get_kernel,
    lower_sma,
)
from repro.kernels.suite import at, c


def count_ops(program, op):
    return sum(1 for i in program if i.op is op)


class TestStreamExtraction:
    def test_daxpy_streams(self):
        kernel, _ = get_kernel("daxpy").instantiate(16)
        low = lower_sma(kernel)
        assert count_ops(low.access_program, Op.STREAMLD) == 2
        assert count_ops(low.access_program, Op.STREAMST) == 1
        assert low.info.load_streams == 2
        assert low.info.store_streams == 1

    def test_ap_program_is_tiny_for_streaming_kernels(self):
        kernel, _ = get_kernel("hydro").instantiate(1024)
        low = lower_sma(kernel)
        # constant-size access program regardless of n: the whole point
        assert len(low.access_program) < 10

    def test_gather_chains_index_stream(self):
        kernel, _ = get_kernel("pic_gather").instantiate(16)
        low = lower_sma(kernel)
        assert count_ops(low.access_program, Op.GATHER) == 1
        assert low.info.gather_streams == 1

    def test_scatter(self):
        kernel, _ = get_kernel("pic_scatter").instantiate(16)
        low = lower_sma(kernel)
        assert count_ops(low.access_program, Op.SCATTER) == 1
        assert low.info.scatter_streams == 1

    def test_carried_forwarding_removes_stream(self):
        kernel, _ = get_kernel("tridiag").instantiate(16)
        low = lower_sma(kernel)
        # x is forwarded: only y and z stream in; one seed LDQ for x[0]
        assert low.info.load_streams == 2
        assert low.info.carried_refs == 1
        assert count_ops(low.access_program, Op.LDQ) == 1

    def test_computed_ref_forces_service_loop(self):
        kernel, _ = get_kernel("computed_gather").instantiate(16)
        low = lower_sma(kernel)
        assert count_ops(low.access_program, Op.FROMQ) == 1
        assert count_ops(low.access_program, Op.DECBNZ) == 1
        assert low.info.computed_refs == 1

    def test_reduction_uses_staddr(self):
        kernel, _ = get_kernel("inner_product").instantiate(16)
        low = lower_sma(kernel)
        assert count_ops(low.access_program, Op.STADDR) == 1
        assert low.info.reductions == 1

    def test_ablation_mode_has_no_descriptors(self):
        kernel, _ = get_kernel("daxpy").instantiate(16)
        low = lower_sma(kernel, use_streams=False)
        assert count_ops(low.access_program, Op.STREAMLD) == 0
        assert count_ops(low.access_program, Op.STREAMST) == 0
        assert count_ops(low.access_program, Op.LDQ) >= 2
        assert count_ops(low.access_program, Op.STADDR) >= 1
        assert not low.uses_streams

    def test_execute_program_identical_across_modes(self):
        kernel, _ = get_kernel("hydro").instantiate(16)
        a = lower_sma(kernel, use_streams=True)
        b = lower_sma(kernel, use_streams=False)
        assert a.execute_program.instructions == b.execute_program.instructions


class TestHazardRules:
    def test_trailing_read_beyond_distance_one_rejected(self):
        kernel = Kernel(
            "bad",
            (ArrayDecl("x", 16), ArrayDecl("y", 16)),
            (Loop("i", 12, (
                Assign(at("x", 2, i=1),
                       BinOp("+", at("x", i=1), at("y", i=1))),
            )),),
        )
        with pytest.raises(LoweringError, match="trails"):
            lower_sma(kernel)

    def test_read_after_write_statement_rejected(self):
        kernel = Kernel(
            "bad2",
            (ArrayDecl("a", 8), ArrayDecl("b", 8)),
            (Loop("i", 8, (
                Assign(at("a", i=1), at("b", i=1)),
                Assign(at("b", i=1), at("a", i=1)),
            )),),
        )
        with pytest.raises(LoweringError, match="stale"):
            lower_sma(kernel)

    def test_read_ahead_allowed(self):
        kernel = Kernel(
            "ok",
            (ArrayDecl("x", 17),),
            (Loop("i", 16, (
                Assign(at("x", i=1), BinOp("+", at("x", 1, i=1), c(1.0))),
            )),),
        )
        lower_sma(kernel)  # must not raise

    def test_mismatched_index_shapes_rejected(self):
        kernel = Kernel(
            "bad3",
            (ArrayDecl("x", 32),),
            (Loop("i", 8, (
                Assign(at("x", i=1), at("x", i=2)),
            )),),
        )
        with pytest.raises(LoweringError, match="index"):
            lower_sma(kernel)

    def test_duplicate_writes_rejected(self):
        kernel = Kernel(
            "bad4",
            (ArrayDecl("x", 8),),
            (Loop("i", 8, (
                Assign(at("x", i=1), c(1.0)),
                Assign(at("x", i=1), c(2.0)),
            )),),
        )
        with pytest.raises(LoweringError, match="duplicate"):
            lower_sma(kernel)


class TestResourceValidation:
    def test_too_many_load_streams(self):
        arrays = tuple(ArrayDecl(f"a{k}", 8) for k in range(10))
        expr = at("a1", i=1)
        for k in range(2, 10):
            expr = BinOp("+", expr, at(f"a{k}", i=1))
        kernel = Kernel(
            "wide", arrays,
            (Loop("i", 8, (Assign(at("a0", i=1), expr),)),),
        )
        with pytest.raises(LoweringError, match="load streams"):
            lower_sma(kernel)

    def test_queue_budget_comfortable_for_suite(self):
        from repro.kernels import all_kernels
        for spec in all_kernels():
            kernel, _ = spec.instantiate(8)
            lower_sma(kernel)
            lower_sma(kernel, use_streams=False)
