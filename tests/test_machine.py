"""Coupled SMA machine: end-to-end programs, termination, diagnostics."""

import pytest

from repro.config import MemoryConfig, QueueConfig, SMAConfig
from repro.core import SMAMachine
from repro.errors import SimulationError
from repro.isa import assemble


def machine(ap_src, ep_src, config=None):
    return SMAMachine(assemble(ap_src, "ap"), assemble(ep_src, "ep"),
                      config or SMAConfig())


class TestEndToEnd:
    def test_vector_triad(self):
        n = 16
        m = machine(f"""
            streamld lq0, #100, #1, #{n}
            streamld lq1, #200, #1, #{n}
            streamst sdq0, #300, #1, #{n}
            halt
        """, f"""
            mov x1, #{n}
            t: mul x2, lq0, #2.0
            add sdq0, x2, lq1
            decbnz x1, t
            halt
        """)
        m.load_array(100, [float(i) for i in range(n)])
        m.load_array(200, [1.0] * n)
        res = m.run()
        assert m.dump_array(300, n).tolist() == [2.0 * i + 1 for i in range(n)]
        assert res.memory_reads == 2 * n
        assert res.memory_writes == n

    def test_decoupling_hides_latency(self):
        """The whole point: cycles ≈ n for a streaming loop even with a
        long memory latency."""
        n = 64
        cfg = SMAConfig(memory=MemoryConfig(latency=16, bank_busy=4,
                                            num_banks=8))
        m = machine(f"""
            streamld lq0, #100, #1, #{n}
            streamst sdq0, #400, #1, #{n}
            halt
        """, f"""
            mov x1, #{n}
            t: add sdq0, lq0, #1.0
            decbnz x1, t
            halt
        """, cfg)
        m.load_array(100, [0.5] * n)
        res = m.run()
        # 2 memory ops per element at 1 accept/cycle is the floor
        assert res.cycles < 2.5 * n + 3 * 16

    def test_result_summary_strings(self):
        m = machine("halt", "halt")
        res = m.run()
        assert "cycles" in res.summary()
        assert res.instructions == 2


class TestTermination:
    def test_waits_for_streams_to_drain(self):
        # AP halts immediately after starting a store stream; the machine
        # must stay alive until the store lands
        m = machine("""
            streamst sdq0, #50, #1, #1
            halt
        """, """
            mov sdq0, #3.5
            halt
        """)
        m.run()
        assert m.memory.read(50) == 3.5

    def test_waits_for_saq_to_drain(self):
        m = machine("""
            staddr sdq0, #60, #0
            halt
        """, """
            mov x1, #30
            t: decbnz x1, t
            mov sdq0, #1.25
            halt
        """)
        m.run()
        assert m.memory.read(60) == 1.25

    def test_deadlock_diagnostic_mentions_stalls(self):
        m = machine("halt", "mov x1, lq0\nhalt")
        with pytest.raises(SimulationError, match="lq_empty"):
            m.run(deadlock_window=100)

    def test_cycle_budget(self):
        m = machine("""
            mov a1, #1000000
            t: decbnz a1, t
            halt
        """, "halt")
        with pytest.raises(SimulationError, match="cycle budget"):
            m.run(max_cycles=500)


class TestStatistics:
    def test_queue_stats_exported(self):
        m = machine("""
            streamld lq0, #10, #1, #8
            halt
        """, """
            mov x1, #8
            t: mov x2, lq0
            decbnz x1, t
            halt
        """)
        res = m.run()
        assert res.queue_stats["lq0"].pushes == 8
        assert res.queue_stats["lq0"].pops == 8

    def test_outstanding_loads_tracked(self):
        cfg = SMAConfig(
            memory=MemoryConfig(latency=8, bank_busy=1, num_banks=8),
            queues=QueueConfig(load_queue_depth=8),
        )
        m = machine("""
            streamld lq0, #0, #1, #64
            halt
        """, """
            mov x1, #64
            t: mov x2, lq0
            decbnz x1, t
            halt
        """, cfg)
        res = m.run()
        assert res.mean_outstanding_loads > 1.0
        assert res.max_outstanding_loads <= 8

    def test_observer_called_every_cycle(self):
        seen = []
        m = machine("nop\nnop\nhalt", "halt")
        m.run(observer=lambda mach, cyc: seen.append(cyc))
        assert seen == list(range(len(seen)))
        assert len(seen) >= 3

    def test_memory_utilization_bounded(self):
        m = machine("""
            streamld lq0, #0, #1, #32
            halt
        """, """
            mov x1, #32
            t: mov x2, lq0
            decbnz x1, t
            halt
        """)
        res = m.run()
        assert 0.0 < res.memory_utilization <= 1.0


class TestSerialization:
    def test_result_to_dict_json_safe(self):
        import json

        m = machine("""
            streamld lq0, #10, #1, #4
            halt
        """, """
            mov x1, #4
            t: mov x2, lq0
            decbnz x1, t
            halt
        """)
        res = m.run()
        payload = json.loads(json.dumps(res.to_dict()))
        assert payload["cycles"] == res.cycles
        assert payload["stream_requests"] == 4
        assert "ap_stalls" in payload and "lod_events" in payload
