"""BankedMemory timing: latency, bank conflicts, port limit, ordering."""

import pytest

from repro.config import MemoryConfig
from repro.memory import BankedMemory, MainMemory


def make(latency=4, banks=4, busy=2, accepts=1, size=256):
    cfg = MemoryConfig(
        size=size, num_banks=banks, latency=latency, bank_busy=busy,
        accepts_per_cycle=accepts,
    )
    return BankedMemory(MainMemory(size), cfg)


class TestLatency:
    def test_read_completes_after_latency(self):
        mem = make(latency=4)
        mem.storage.write(8, 7.5)
        got = []
        assert mem.try_issue(8, now=0, on_complete=got.append)
        for t in range(4):
            mem.tick(t)
            assert got == []
        mem.tick(4)
        assert got == [7.5]

    def test_write_visible_immediately_functionally(self):
        mem = make()
        assert mem.try_issue(3, now=0, is_write=True, value=2.5)
        assert mem.storage.read(3) == 2.5

    def test_read_captures_value_at_issue(self):
        # a later write must not corrupt an in-flight read
        mem = make(latency=4, busy=1, accepts=2)
        mem.storage.write(0, 1.0)
        got = []
        assert mem.try_issue(0, now=0, on_complete=got.append)
        mem.storage.write(0, 9.0)  # direct functional overwrite
        mem.tick(4)
        assert got == [1.0]


class TestBankConflicts:
    def test_same_bank_rejected_within_busy_window(self):
        mem = make(banks=4, busy=3, accepts=2)
        assert mem.try_issue(0, now=0)          # bank 0
        assert not mem.try_issue(4, now=0)      # bank 0 again -> conflict
        assert mem.stats.bank_conflicts == 1

    def test_different_bank_accepted_same_cycle(self):
        mem = make(banks=4, busy=3, accepts=2)
        assert mem.try_issue(0, now=0)
        assert mem.try_issue(1, now=0)

    def test_bank_frees_after_busy(self):
        mem = make(banks=4, busy=2)
        assert mem.try_issue(0, now=0)
        assert not mem.can_accept(0, 1)
        assert mem.can_accept(0, 2)

    def test_per_bank_accounting(self):
        mem = make(banks=2, busy=1, accepts=4)
        mem.try_issue(0, now=0)
        mem.try_issue(1, now=0)
        mem.try_issue(2, now=1)
        assert mem.stats.per_bank_accesses == [2, 1]


class TestPortLimit:
    def test_accepts_per_cycle(self):
        mem = make(banks=8, busy=1, accepts=1)
        assert mem.try_issue(0, now=0)
        assert not mem.try_issue(1, now=0)  # port saturated
        assert mem.stats.port_rejects == 1
        assert mem.try_issue(1, now=1)

    def test_can_accept_respects_port(self):
        mem = make(banks=8, busy=1, accepts=1)
        mem.try_issue(0, now=0)
        assert not mem.can_accept(1, 0)
        assert mem.can_accept(1, 1)


class TestStats:
    def test_counts(self):
        mem = make(accepts=4, busy=1)
        mem.try_issue(0, now=0)
        mem.try_issue(1, now=0, is_write=True, value=1.0)
        assert mem.stats.reads == 1
        assert mem.stats.writes == 1

    def test_utilization(self):
        mem = make(banks=2, busy=2, accepts=2)
        mem.try_issue(0, now=0)
        # one request occupies a bank for 2 cycles: 2 / (4 cycles * 2 banks)
        assert mem.stats.utilization(4, 2) == pytest.approx(0.25)

    def test_quiescent(self):
        mem = make(latency=2)
        got = []
        mem.try_issue(0, now=0, on_complete=got.append)
        assert not mem.quiescent()
        mem.tick(2)
        assert mem.quiescent()


class TestOrdering:
    def test_completions_fire_in_time_order(self):
        mem = make(latency=3, banks=8, busy=1, accepts=2)
        order = []
        mem.try_issue(0, now=0, on_complete=lambda v: order.append("a"))
        mem.try_issue(1, now=1, on_complete=lambda v: order.append("b"))
        for t in range(6):
            mem.tick(t)
        assert order == ["a", "b"]
