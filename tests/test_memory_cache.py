"""DataCache: hit/miss timing, LRU, write-back accounting."""

import pytest

from repro.config import CacheConfig
from repro.memory import DataCache


def make(size=32, line=4, assoc=2, latency=8):
    return DataCache(
        CacheConfig(size_words=size, line_words=line, associativity=assoc),
        memory_latency=latency,
    )


class TestTiming:
    def test_cold_miss_then_hit(self):
        c = make()
        miss = c.access(0, is_write=False)
        hit = c.access(1, is_write=False)  # same 4-word line
        assert miss == 1 + 8 + 3  # hit_time + latency + (line-1)*transfer
        assert hit == 1
        assert c.stats.hits == 1 and c.stats.misses == 1

    def test_line_granularity(self):
        c = make(line=4)
        c.access(0, False)
        assert c.access(3, False) == 1   # same line
        assert c.access(4, False) > 1    # next line misses

    def test_dirty_eviction_costs_writeback(self):
        c = make(size=8, line=4, assoc=1)  # 2 sets, direct mapped
        c.access(0, is_write=True)      # line 0 -> set 0, dirty
        clean_miss = 1 + 8 + 3
        # line at address 8 maps to set 0 (8//4=2, 2%2=0): evicts dirty line
        cost = c.access(8, is_write=False)
        assert cost == clean_miss + 4   # + line_words * transfer
        assert c.stats.writebacks == 1

    def test_clean_eviction_free(self):
        c = make(size=8, line=4, assoc=1)
        c.access(0, False)
        cost = c.access(8, False)
        assert cost == 1 + 8 + 3
        assert c.stats.writebacks == 0


class TestLRU:
    def test_least_recently_used_evicted(self):
        c = make(size=8, line=4, assoc=2)  # 1 set, 2 ways
        c.access(0, False)    # line A
        c.access(4, False)    # line B
        c.access(0, False)    # touch A (B now LRU)
        c.access(8, False)    # line C evicts B
        assert c.access(0, False) == 1      # A still resident
        assert c.access(4, False) > 1       # B was evicted


class TestStats:
    def test_hit_rate(self):
        c = make()
        c.access(0, False)
        c.access(1, False)
        c.access(2, False)
        c.access(3, False)
        assert c.stats.hit_rate == pytest.approx(0.75)

    def test_flush_cycles(self):
        c = make(line=4)            # 4 sets
        c.access(0, True)           # set 0, dirty
        c.access(4, True)           # set 1, dirty
        c.access(8, False)          # set 2, clean
        assert c.flush_cycles() == 2 * 4 * 1
        assert c.flush_cycles() == 0  # idempotent


class TestConfigValidation:
    def test_size_multiple_required(self):
        with pytest.raises(ValueError):
            CacheConfig(size_words=10, line_words=4, associativity=2)

    def test_num_sets(self):
        assert CacheConfig(size_words=32, line_words=4,
                           associativity=2).num_sets == 4
