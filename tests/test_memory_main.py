"""MainMemory functional behaviour and address coercion."""

import numpy as np
import pytest

from repro.errors import MemoryError_
from repro.memory import MainMemory, as_address


class TestAsAddress:
    def test_int(self):
        assert as_address(5) == 5

    def test_integral_float(self):
        assert as_address(5.0) == 5

    def test_numpy_scalar(self):
        assert as_address(np.float64(8.0)) == 8

    def test_fractional_rejected(self):
        with pytest.raises(MemoryError_, match="non-integral"):
            as_address(5.5)


class TestMainMemory:
    def test_read_write(self):
        m = MainMemory(64)
        m.write(10, 3.25)
        assert m.read(10) == 3.25

    def test_zero_initialized(self):
        assert MainMemory(8).read(7) == 0.0

    def test_bounds(self):
        m = MainMemory(16)
        with pytest.raises(MemoryError_):
            m.read(16)
        with pytest.raises(MemoryError_):
            m.write(-1, 0.0)

    def test_bad_size(self):
        with pytest.raises(MemoryError_):
            MainMemory(0)

    def test_load_dump_array(self):
        m = MainMemory(32)
        data = np.arange(10, dtype=float)
        m.load_array(4, data)
        assert np.array_equal(m.dump_array(4, 10), data)

    def test_load_array_overflow(self):
        m = MainMemory(8)
        with pytest.raises(MemoryError_):
            m.load_array(4, np.zeros(8))

    def test_dump_negative_count(self):
        m = MainMemory(8)
        with pytest.raises(MemoryError_):
            m.dump_array(0, -1)

    def test_dump_returns_copy(self):
        m = MainMemory(8)
        out = m.dump_array(0, 4)
        out[0] = 99
        assert m.read(0) == 0.0

    def test_snapshot(self):
        m = MainMemory(4)
        m.write(2, 1.5)
        snap = m.snapshot()
        assert snap.tolist() == [0, 0, 1.5, 0]
