"""Prefetching cache: OBL and RPT policies, timing, coverage stats."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import CacheConfig, MemoryConfig, ScalarConfig
from repro.memory import DataCache, PrefetchConfig, PrefetchingCache


def make(policy="stride", latency=8, degree=1, table_size=4, **cache_kw):
    cache_kw.setdefault("size_words", 64)
    cache_kw.setdefault("line_words", 4)
    cache_kw.setdefault("associativity", 2)
    return PrefetchingCache(
        CacheConfig(**cache_kw),
        memory_latency=latency,
        prefetch=PrefetchConfig(policy, table_size=table_size, degree=degree),
    )


class TestConfig:
    def test_bad_policy(self):
        with pytest.raises(ValueError):
            PrefetchConfig("nextline")

    def test_prefetch_requires_cache(self):
        with pytest.raises(ValueError, match="requires a cache"):
            ScalarConfig(memory=MemoryConfig(), prefetch=PrefetchConfig())


class TestOBL:
    def test_miss_triggers_next_line(self):
        c = make("obl")
        c.access(0, False, now=0)
        assert c.stats.prefetches_issued == 1
        # line 1 (addrs 4..7) arrives latency after the miss completes
        miss_cost = 1 + 8 + 3
        ready = 0 + miss_cost + 8
        cost = c.access(4, False, now=ready + 1)
        assert cost == 1
        assert c.stats.prefetch_hits == 1

    def test_early_access_waits_remaining_flight_time(self):
        c = make("obl")
        cost0 = c.access(0, False, now=0)
        ready = cost0 + 8
        access_at = ready - 3
        cost = c.access(4, False, now=access_at)
        assert cost == 1 + 3
        assert c.stats.prefetch_partial_hits == 1

    def test_duplicate_prefetch_suppressed(self):
        c = make("obl")
        c.access(0, False, now=0)
        c.access(1, False, now=20)  # hit; OBL triggers only on miss paths
        assert c.stats.prefetches_issued == 1


class TestRPT:
    def _train(self, c, addrs, start=0, gap=20, pc=7):
        now = start
        for a in addrs:
            c.access(a, False, now=now, pc=pc)
            now += gap
        return now

    def test_confirmed_stride_prefetches_ahead(self):
        c = make("stride")
        # three accesses at stride 8 (words): second delta confirms
        self._train(c, [0, 8, 16])
        assert c.stats.prefetches_issued >= 1

    def test_unconfirmed_stride_stays_quiet(self):
        c = make("stride")
        self._train(c, [0, 8, 3, 30])
        assert c.stats.prefetches_issued == 0

    def test_per_pc_tracking_survives_interleaving(self):
        c = make("stride", table_size=8)
        now = 0
        for i in range(6):  # two interleaved unit-stride streams
            c.access(100 + i, False, now=now, pc=1)
            now += 10
            c.access(200 + i, False, now=now, pc=2)
            now += 10
        assert c.stats.prefetches_issued >= 2

    def test_global_history_would_fail_without_pc(self):
        # same interleaving presented through ONE pc: deltas alternate,
        # the stride never confirms
        c = make("stride", table_size=8)
        now = 0
        for i in range(6):
            c.access(100 + i, False, now=now, pc=1)
            now += 10
            c.access(200 + i, False, now=now, pc=1)
            now += 10
        assert c.stats.prefetches_issued == 0

    def test_table_eviction(self):
        c = make("stride", table_size=2)
        c.access(0, False, now=0, pc=1)
        c.access(0, False, now=1, pc=2)
        c.access(0, False, now=2, pc=3)  # evicts pc=1
        assert len(c._rpt) == 2
        assert 1 not in c._rpt

    def test_negative_stride(self):
        c = make("stride")
        self._train(c, [100, 92, 84])
        assert c.stats.prefetches_issued >= 1


class TestStats:
    def test_coverage_fraction(self):
        c = make("obl", latency=2)
        now = 0
        for i in range(0, 32):  # unit-stride walk: OBL covers every other line
            cost = c.access(i, False, now=now)
            now += cost + 5
        assert 0.0 < c.stats.coverage < 1.0

    def test_inherits_cache_stats(self):
        c = make("obl")
        c.access(0, False, now=0)
        c.access(1, False, now=2)
        assert c.stats.hits == 1
        assert c.stats.misses == 1


class TestDeferredWriteback:
    """A dirty victim evicted by a prefetch *fill* owes its write-back
    bandwidth; the debt lands on the next demand miss (hand-computed
    trace: 2 sets x 2 ways, line_words=4, latency=8, transfer=1)."""

    def test_hand_computed_trace(self):
        c = PrefetchingCache(
            CacheConfig(size_words=16, line_words=4, associativity=2),
            memory_latency=8,
            prefetch=PrefetchConfig("obl"),
        )
        miss = 1 + 8 + 3  # hit_time + latency + (line_words-1)*transfer
        # two dirty lines fill set 0
        assert c.access(0, True, now=0) == miss     # line 0, prefetch line 1
        assert c.access(8, True, now=20) == miss    # line 2, prefetch line 3
        # demand miss on line 5 (set 1) prefetches line 6 (ready at 40+12+8)
        assert c.access(20, False, now=40) == miss
        # demand on line 6 claims the completed prefetch: the install
        # evicts dirty line 0, which costs the *requester* nothing now
        assert c.access(24, False, now=60) == 1
        assert c.stats.writebacks == 1
        assert c._deferred_writeback_cycles == 4  # line_words * transfer
        # next demand miss (line 8, set 0) pays: clean-miss 12 + its own
        # dirty victim (line 2) 4 + the deferred debt 4
        assert c.access(32, False, now=80) == miss + 4 + 4
        # debt settled: a later clean miss is back to the base cost
        assert c.access(40, False, now=120) == miss

    def test_remaining_debt_settles_at_flush(self):
        c = PrefetchingCache(
            CacheConfig(size_words=16, line_words=4, associativity=2),
            memory_latency=8,
            prefetch=PrefetchConfig("obl"),
        )
        c.access(0, True, now=0)
        c.access(8, True, now=20)
        c.access(20, False, now=40)
        c.access(24, False, now=60)  # prefetch install evicts dirty line 0
        assert c._deferred_writeback_cycles == 4
        # no further demand miss: the flush must still pay the debt
        # (dirty lines 2 and 6? line 6 was a read -> only line 2 dirty)
        flushed = c.flush_cycles()
        assert flushed == 1 * 4 + 4  # one dirty line + the debt
        assert c._deferred_writeback_cycles == 0


class TestStrideTargets:
    """_train_rpt must prefetch the line containing ``addr + delta*k``
    (lookahead in lines for sub-line strides), not ``delta`` whole lines
    per trigger."""

    def _walk(self, c, base, stride, count, pc, start_now=0, gap=1):
        now = start_now
        for i in range(count):
            now += c.access(base + i * stride, False, now=now, pc=pc) + gap
        return now

    def test_stride2_daxpy_like_stream_is_covered(self):
        # two stride-2 load streams and a stride-2 store stream, as a
        # daxpy over interleaved (re,im) arrays would issue
        c = make("stride", table_size=16, degree=2, size_words=256)
        now = 0
        for i in range(0, 128, 2):
            now += c.access(1000 + i, False, now=now, pc=1) + 1
            now += c.access(2000 + i, False, now=now, pc=2) + 1
            now += c.access(3000 + i, True, now=now, pc=3) + 1
        s = c.stats
        assert s.coverage > 0.8, f"coverage {s.coverage:.3f}"
        # the stream touches every line; almost none should demand-miss
        lines_touched = 3 * (128 // 4)
        assert s.misses < lines_touched // 4

    def test_word_stride_targets_lines_actually_touched(self):
        # stride 8 words = 2 lines: the prefetcher must request line+2k,
        # not line+8k (the old, dimensionally wrong arithmetic)
        c = make("stride", size_words=256, degree=1)
        self._walk(c, base=0, stride=8, count=3, pc=7, gap=19)
        # after [0, 8, 16] the confirmed entry targets (16+8)//4 = line 6
        assert 6 in c._pending
        assert 12 not in c._pending  # old code requested line 4 + 8 = 12

    def test_negative_sub_line_stride_runs_backwards(self):
        c = make("stride", size_words=256)
        # stride -2 words inside line_words=4: lookahead falls back to
        # whole lines in the stream's direction
        self._walk(c, base=401, stride=-2, count=3, pc=3, gap=19)
        assert c.stats.prefetches_issued >= 1
        assert all(t < 401 // 4 for t in c._pending)


class TestStalePending:
    def test_unclaimed_prefetches_retire(self):
        c = make("obl", latency=8)
        c.access(0, False, now=0)  # prefetches line 1
        assert len(c._pending) == 1
        # far in the future, an unrelated access sweeps the stale entry
        c.access(4000, False, now=10_000)
        assert len(c._pending) == 1  # only the new OBL prefetch remains
        assert 1 not in c._pending
        assert c.stats.prefetches_stale == 1

    def test_pending_is_bounded_on_irregular_stream(self):
        # a never-repeating OBL stream issues a prefetch per miss; the
        # stale sweep must keep the pending set from growing without bound
        c = make("obl", latency=8, size_words=64)
        now = 0
        for i in range(0, 400 * 8, 8):  # one miss per access, 2 lines apart
            now += c.access(i, False, now=now) + 1
        # entries live ~(miss_cost + latency + stale window) cycles and
        # are issued one per ~13 cycles, so the steady state is ~12 deep
        assert len(c._pending) <= 20
        assert c.stats.prefetches_stale > 300

    def test_accuracy_reflects_useless_prefetches(self):
        c = make("obl", latency=8)
        c.access(0, False, now=0)       # prefetch line 1 ...
        c.access(4, False, now=30)      # ... claimed: accurate
        c.access(4000, False, now=10_000)  # line-1000 prefetch goes stale
        c.flush_cycles()                   # retires everything in flight
        s = c.stats
        assert s.prefetches_issued == 3
        assert s.prefetch_hits == 1
        assert s.prefetches_stale == 2
        assert s.prefetch_accuracy == pytest.approx(1 / 3)

    def test_accuracy_zero_when_nothing_issued(self):
        assert make("stride").stats.prefetch_accuracy == 0.0


class TestDegeneracy:
    """A PrefetchingCache whose stride predictor never confirms must be
    bit-identical to the plain DataCache in costs and stats."""

    @settings(max_examples=60, deadline=None)
    @given(
        accesses=st.lists(
            st.tuples(st.integers(0, 511), st.booleans()),
            min_size=1, max_size=120,
        ),
        gap=st.integers(1, 30),
    )
    def test_never_confirming_stride_degenerates_to_plain_cache(
        self, accesses, gap
    ):
        cfg = CacheConfig(size_words=64, line_words=4, associativity=2)
        plain = DataCache(cfg, memory_latency=8)
        prefetching = PrefetchingCache(
            cfg, memory_latency=8,
            prefetch=PrefetchConfig("stride", table_size=4),
        )
        now = 0
        for pc, (addr, is_write) in enumerate(accesses):
            # a unique pc per access: the RPT can never confirm a stride
            want = plain.access(addr, is_write, now=now, pc=pc)
            got = prefetching.access(addr, is_write, now=now, pc=pc)
            assert got == want
            now += want + gap
        assert prefetching.stats.prefetches_issued == 0
        for field in ("hits", "misses", "writebacks"):
            assert getattr(prefetching.stats, field) == \
                getattr(plain.stats, field)
        assert prefetching.flush_cycles() == plain.flush_cycles()
