"""Prefetching cache: OBL and RPT policies, timing, coverage stats."""

import pytest

from repro.config import CacheConfig, MemoryConfig, ScalarConfig
from repro.memory import PrefetchConfig, PrefetchingCache


def make(policy="stride", latency=8, degree=1, table_size=4, **cache_kw):
    cache_kw.setdefault("size_words", 64)
    cache_kw.setdefault("line_words", 4)
    cache_kw.setdefault("associativity", 2)
    return PrefetchingCache(
        CacheConfig(**cache_kw),
        memory_latency=latency,
        prefetch=PrefetchConfig(policy, table_size=table_size, degree=degree),
    )


class TestConfig:
    def test_bad_policy(self):
        with pytest.raises(ValueError):
            PrefetchConfig("nextline")

    def test_prefetch_requires_cache(self):
        with pytest.raises(ValueError, match="requires a cache"):
            ScalarConfig(memory=MemoryConfig(), prefetch=PrefetchConfig())


class TestOBL:
    def test_miss_triggers_next_line(self):
        c = make("obl")
        c.access(0, False, now=0)
        assert c.stats.prefetches_issued == 1
        # line 1 (addrs 4..7) arrives latency after the miss completes
        miss_cost = 1 + 8 + 3
        ready = 0 + miss_cost + 8
        cost = c.access(4, False, now=ready + 1)
        assert cost == 1
        assert c.stats.prefetch_hits == 1

    def test_early_access_waits_remaining_flight_time(self):
        c = make("obl")
        cost0 = c.access(0, False, now=0)
        ready = cost0 + 8
        access_at = ready - 3
        cost = c.access(4, False, now=access_at)
        assert cost == 1 + 3
        assert c.stats.prefetch_partial_hits == 1

    def test_duplicate_prefetch_suppressed(self):
        c = make("obl")
        c.access(0, False, now=0)
        c.access(1, False, now=20)  # hit; OBL triggers only on miss paths
        assert c.stats.prefetches_issued == 1


class TestRPT:
    def _train(self, c, addrs, start=0, gap=20, pc=7):
        now = start
        for a in addrs:
            c.access(a, False, now=now, pc=pc)
            now += gap
        return now

    def test_confirmed_stride_prefetches_ahead(self):
        c = make("stride")
        # three accesses at stride 8 (words): second delta confirms
        self._train(c, [0, 8, 16])
        assert c.stats.prefetches_issued >= 1

    def test_unconfirmed_stride_stays_quiet(self):
        c = make("stride")
        self._train(c, [0, 8, 3, 30])
        assert c.stats.prefetches_issued == 0

    def test_per_pc_tracking_survives_interleaving(self):
        c = make("stride", table_size=8)
        now = 0
        for i in range(6):  # two interleaved unit-stride streams
            c.access(100 + i, False, now=now, pc=1)
            now += 10
            c.access(200 + i, False, now=now, pc=2)
            now += 10
        assert c.stats.prefetches_issued >= 2

    def test_global_history_would_fail_without_pc(self):
        # same interleaving presented through ONE pc: deltas alternate,
        # the stride never confirms
        c = make("stride", table_size=8)
        now = 0
        for i in range(6):
            c.access(100 + i, False, now=now, pc=1)
            now += 10
            c.access(200 + i, False, now=now, pc=1)
            now += 10
        assert c.stats.prefetches_issued == 0

    def test_table_eviction(self):
        c = make("stride", table_size=2)
        c.access(0, False, now=0, pc=1)
        c.access(0, False, now=1, pc=2)
        c.access(0, False, now=2, pc=3)  # evicts pc=1
        assert len(c._rpt) == 2
        assert 1 not in c._rpt

    def test_negative_stride(self):
        c = make("stride")
        self._train(c, [100, 92, 84])
        assert c.stats.prefetches_issued >= 1


class TestStats:
    def test_coverage_fraction(self):
        c = make("obl", latency=2)
        now = 0
        for i in range(0, 32):  # unit-stride walk: OBL covers every other line
            cost = c.access(i, False, now=now)
            now += cost + 5
        assert 0.0 < c.stats.coverage < 1.0

    def test_inherits_cache_stats(self):
        c = make("obl")
        c.access(0, False, now=0)
        c.access(1, False, now=2)
        assert c.stats.hits == 1
        assert c.stats.misses == 1
