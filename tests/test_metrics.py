"""Metrics layer: stall attribution, registry, samplers, RunReport.

The load-bearing property here mirrors ``tests/test_fast_forward.py``:
attaching the metrics layer must NOT disable the fast-forward path, and
the stall-bucket totals, sampler summaries and every other observable
must stay bit-identical between naive ticking and closed-form replay.
The partition invariant — buckets sum to total cycles — is checked for
every kernel in the suite on both machines.
"""

import json
from dataclasses import dataclass, field
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import (
    CacheConfig,
    MemoryConfig,
    QueueConfig,
    ScalarConfig,
    SMAConfig,
)
from repro.core import SMAMachine
from repro.harness.jobs import Job, run_job
from repro.harness.runner import (
    _fit_memory,
    _load_inputs,
    run_on_scalar,
    run_on_sma,
)
from repro.kernels import all_kernels, get_kernel, lower_sma
from repro.memory import PrefetchConfig
from repro.metrics import (
    SCALAR_BUCKETS,
    SCHEMA_VERSION,
    STALL_BUCKETS,
    MetricsRegistry,
    StrideSampler,
    capture_reports,
    register_stats,
    validate_report,
)

GOLDEN = Path(__file__).parent / "golden_runreport.json"

#: same structurally diverse representatives as the fast-forward tests
SUITE_REPS = ("daxpy", "hydro", "tridiag", "computed_gather", "pic_gather")


def _machine(kernel, inputs, latency, depth, banks):
    lowered = lower_sma(kernel)
    queues = QueueConfig(
        load_queue_depth=depth,
        store_data_depth=depth,
        store_addr_depth=depth,
        index_queue_depth=depth,
    )
    mem = MemoryConfig(
        latency=latency, bank_busy=max(1, latency // 2), num_banks=banks
    )
    cfg = SMAConfig(memory=_fit_memory(mem, lowered.layout), queues=queues)
    machine = SMAMachine(
        lowered.access_program, lowered.execute_program, cfg
    )
    _load_inputs(machine, lowered.layout, kernel, inputs)
    return machine


def _metered_run(kernel, inputs, latency, depth, banks, fast):
    """One run with metrics + an off-stride sampler attached; returns
    everything the two simulation modes must agree on."""
    machine = _machine(kernel, inputs, latency, depth, banks)
    mm = machine.attach_metrics(
        samplers=(
            StrideSampler(
                "lq", lambda m: sum(map(len, m._load_slots)), stride=5
            ),
        )
    )
    result = machine.run(fast_forward=fast)
    return {
        "result": result.to_dict(),
        "buckets": mm.stall_breakdown(),
        "samplers": mm.registry.sampler_values(),
        "counters": mm.registry.counter_values(),
    }


# ---------------------------------------------------------------------------
# the partition invariant: buckets sum to cycles, everywhere
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("spec", all_kernels(), ids=lambda s: s.name)
def test_sma_buckets_partition_cycles_across_suite(spec):
    kernel, inputs = spec.instantiate(32)
    run = run_on_sma(kernel, inputs, metrics=True)
    breakdown = run.report.stall_breakdown
    assert tuple(breakdown) == STALL_BUCKETS
    assert sum(breakdown.values()) == run.cycles
    assert run.result.stall_breakdown == breakdown


@pytest.mark.parametrize("spec", all_kernels(), ids=lambda s: s.name)
def test_scalar_buckets_partition_cycles_across_suite(spec):
    kernel, inputs = spec.instantiate(32)
    run = run_on_scalar(kernel, inputs, metrics=True)
    breakdown = run.report.stall_breakdown
    assert tuple(breakdown) == SCALAR_BUCKETS
    assert sum(breakdown.values()) == run.cycles


@pytest.mark.parametrize("cache,prefetch", [
    (None, None),
    (CacheConfig(), None),
    (CacheConfig(), PrefetchConfig("stride")),
])
def test_scalar_variants_partition_cycles(cache, prefetch):
    kernel, inputs = get_kernel("daxpy").instantiate(64)
    cfg = ScalarConfig(cache=cache, prefetch=prefetch)
    run = run_on_scalar(kernel, inputs, cfg, metrics=True)
    assert sum(run.report.stall_breakdown.values()) == run.cycles
    assert sum(run.result.stall_breakdown().values()) == run.result.cycles


def test_lod_kernel_attributes_to_loss_of_decoupling():
    """computed_gather serializes the AP behind the EP; the breakdown
    must say so (this is the R-T4 story told per cycle)."""
    kernel, inputs = get_kernel("computed_gather").instantiate(64)
    run = run_on_sma(kernel, inputs, metrics=True)
    breakdown = run.report.stall_breakdown
    assert breakdown["loss_of_decoupling"] == max(breakdown.values())


# ---------------------------------------------------------------------------
# fast-forward equivalence with metrics attached
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("name", SUITE_REPS)
@pytest.mark.parametrize("latency", (2, 8, 64))
@pytest.mark.parametrize("depth", (1, 4, 16))
def test_metrics_identical_under_fast_forward(name, latency, depth):
    kernel, inputs = get_kernel(name).instantiate(32)
    naive = _metered_run(kernel, inputs, latency, depth, 8, fast=False)
    fast = _metered_run(kernel, inputs, latency, depth, 8, fast=True)
    assert naive == fast


@settings(max_examples=25, deadline=None)
@given(
    name=st.sampled_from(SUITE_REPS),
    latency=st.sampled_from((2, 4, 8, 16, 32, 64)),
    depth=st.sampled_from((1, 2, 4, 16)),
    banks=st.sampled_from((1, 2, 8)),
    seed=st.integers(0, 2**31),
)
def test_metrics_identical_on_random_instances(
    name, latency, depth, banks, seed
):
    # the spec's own instantiation keeps index arrays valid while the
    # seed varies the data (and hence bank-conflict timing)
    kernel, inputs = get_kernel(name).instantiate(24, seed=seed)
    naive = _metered_run(kernel, inputs, latency, depth, banks, fast=False)
    fast = _metered_run(kernel, inputs, latency, depth, banks, fast=True)
    assert naive == fast


def test_metrics_do_not_disable_the_fast_path():
    """With metrics attached the machine must still *skip* cycles: the
    number of stepped (template) cycles stays well below the cycle count,
    while the buckets match naive ticking exactly."""
    kernel, inputs = get_kernel("daxpy").instantiate(32)
    machine = _machine(kernel, inputs, latency=64, depth=8, banks=8)
    mm = machine.attach_metrics()
    stepped = 0
    original = machine.step_cycle

    def counting_step():
        nonlocal stepped
        stepped += 1
        original()

    machine.step_cycle = counting_step
    result = machine.run(fast_forward=True)
    assert stepped < result.cycles  # the replay actually engaged
    assert sum(mm.buckets.values()) == result.cycles

    reference = _machine(kernel, inputs, latency=64, depth=8, banks=8)
    ref_mm = reference.attach_metrics()
    reference.run(fast_forward=False)
    assert mm.buckets == ref_mm.buckets


# ---------------------------------------------------------------------------
# StrideSampler closed-form replay arithmetic
# ---------------------------------------------------------------------------


class TestStrideSampler:
    @pytest.mark.parametrize("stride", (1, 3, 5, 64))
    @pytest.mark.parametrize("start,count", [
        (0, 1), (0, 17), (3, 1), (3, 2), (7, 100), (64, 64), (65, 63),
    ])
    def test_replay_matches_naive_firing(self, stride, start, count):
        probe = lambda m: 7  # constant, as in a fully-idle window
        naive = StrideSampler("s", probe, stride=stride)
        for cycle in range(start, start + count):
            naive.on_cycle(None, cycle)
        replayed = StrideSampler("s", probe, stride=stride)
        replayed.on_replay(None, start, count)
        assert replayed.summary() == naive.summary()

    def test_summary_fields(self):
        s = StrideSampler("occ", lambda m: m, stride=2)
        for cycle, value in enumerate((5, 0, 3, 0, 1, 0)):
            s.on_cycle(value, cycle)
        assert s.summary() == {
            "stride": 2, "samples": 3, "mean": 3.0, "max": 5
        }

    def test_empty_sampler_mean_is_zero(self):
        assert StrideSampler("x", lambda m: 1).mean == 0.0

    def test_bad_stride_rejected(self):
        with pytest.raises(ValueError):
            StrideSampler("x", lambda m: 1, stride=0)


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------


@dataclass
class _FakeStats:
    events: int = 0
    ratio: float = 0.0
    histogram: dict = field(default_factory=dict)


class TestRegistry:
    def test_counters_are_live_getters(self):
        reg = MetricsRegistry()
        stats = _FakeStats()
        register_stats(reg, "fake", stats)
        assert reg.counter_values()["fake.events"] == 0
        stats.events = 9
        stats.histogram[3] = 2
        assert reg.counter_values()["fake.events"] == 9
        assert reg.histogram_values()["fake.histogram"] == {"3": 2}

    def test_duplicate_names_rejected(self):
        reg = MetricsRegistry()
        reg.register_counter("a.b", lambda: 1)
        with pytest.raises(ValueError, match="duplicate"):
            reg.register_counter("a.b", lambda: 2)
        reg.register_histogram("a.h", dict)
        with pytest.raises(ValueError, match="duplicate"):
            reg.register_histogram("a.h", dict)
        reg.add_sampler(StrideSampler("s", lambda m: 0))
        with pytest.raises(ValueError, match="duplicate"):
            reg.add_sampler(StrideSampler("s", lambda m: 0))

    def test_sma_registry_covers_every_component(self):
        kernel, inputs = get_kernel("daxpy").instantiate(16)
        run = run_on_sma(kernel, inputs, metrics=True)
        counters = run.report.counters
        for prefix in ("ap.", "ep.", "engine.", "store_unit.",
                       "memory.", "queue.", "machine.cycles"):
            assert any(n.startswith(prefix) for n in counters), prefix
        assert counters["machine.cycles"] == run.cycles
        assert "memory.per_bank_accesses" in run.report.histograms


# ---------------------------------------------------------------------------
# RunReport schema (the golden file CI guards)
# ---------------------------------------------------------------------------


class TestRunReportSchema:
    def golden(self):
        return json.loads(GOLDEN.read_text())

    def test_golden_file_matches_code(self):
        golden = self.golden()
        assert golden["schema_version"] == SCHEMA_VERSION
        assert tuple(golden["sma_buckets"]) == STALL_BUCKETS
        assert tuple(golden["scalar_buckets"]) == SCALAR_BUCKETS

    @pytest.mark.parametrize("machine", ("sma", "scalar"))
    def test_live_reports_validate_and_match_golden(self, machine):
        kernel, inputs = get_kernel("hydro").instantiate(32)
        runner = run_on_sma if machine == "sma" else run_on_scalar
        report = runner(kernel, inputs, metrics=True).report
        report.n = 32
        data = json.loads(report.to_json())
        assert validate_report(data) == []
        golden = self.golden()
        assert sorted(data) == golden["required_keys"]
        buckets = golden[f"{machine}_buckets"]
        assert sorted(data["stall_breakdown"]) == sorted(buckets)

    def test_validator_rejects_drift(self):
        kernel, inputs = get_kernel("daxpy").instantiate(16)
        data = run_on_sma(kernel, inputs, metrics=True).report.to_dict()
        assert validate_report(data) == []
        broken = dict(data)
        del broken["stall_breakdown"]
        assert validate_report(broken)
        skewed = dict(data)
        skewed["cycles"] = data["cycles"] + 1
        assert any("sum" in p for p in validate_report(skewed))
        old = dict(data)
        old["schema_version"] = SCHEMA_VERSION + 1
        assert any("schema_version" in p for p in validate_report(old))

    def test_csv_export_round_trips_buckets(self):
        kernel, inputs = get_kernel("daxpy").instantiate(16)
        report = run_on_sma(kernel, inputs, metrics=True).report
        rows = dict(
            line.split(",", 1)
            for line in report.to_csv().strip().splitlines()[1:]
        )
        assert int(rows["cycles"]) == report.cycles
        for bucket, cycles in report.stall_breakdown.items():
            assert int(rows[f"stall.{bucket}"]) == cycles

    def test_breakdown_text_shows_total(self):
        kernel, inputs = get_kernel("daxpy").instantiate(16)
        report = run_on_sma(kernel, inputs, metrics=True).report
        text = report.breakdown_text()
        assert "100.00%" in text
        for bucket in STALL_BUCKETS:
            assert bucket in text


# ---------------------------------------------------------------------------
# capture + job layer integration
# ---------------------------------------------------------------------------


class TestCapture:
    def test_jobs_route_reports_into_capture(self, tmp_path):
        with capture_reports(tmp_path) as collector:
            out = run_job(Job("sma", "daxpy", n=16))
            assert sum(out["stall_breakdown"].values()) == out["cycles"]
            run_job(Job("scalar", "daxpy", n=16))
        assert [r.machine for r in collector.reports] == ["sma", "scalar"]
        assert all(r.n == 16 for r in collector.reports)
        files = sorted(tmp_path.glob("*.json"))
        assert len(files) == 2
        for path in files:
            assert validate_report(json.loads(path.read_text())) == []

    def test_no_capture_no_report(self):
        out = run_job(Job("sma", "daxpy", n=16))
        assert "stall_breakdown" not in out

    def test_nested_capture_rejected(self):
        with capture_reports():
            with pytest.raises(RuntimeError, match="already active"):
                with capture_reports():
                    pass  # pragma: no cover


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------


class TestCLI:
    def test_report_command_writes_exports(self, tmp_path, capsys):
        from repro.cli import main

        assert main([
            "report", "daxpy", "--n", "32", "--out", str(tmp_path)
        ]) == 0
        shown = capsys.readouterr().out
        assert "loss_of_decoupling" in shown
        assert "100.00%" in shown
        written = {p.name for p in tmp_path.iterdir()}
        assert "runreport-sma-daxpy.json" in written
        assert "runreport-sma-daxpy.csv" in written
        data = json.loads(
            (tmp_path / "runreport-sma-daxpy.json").read_text()
        )
        assert validate_report(data) == []

    def test_experiment_metrics_smoke(self, tmp_path, capsys):
        """The CI smoke step, in miniature: a small R-T2 with --metrics
        must leave valid RunReports behind."""
        from repro.cli import main

        out_dir = tmp_path / "reports"
        assert main([
            "experiment", "R-T2", "--n", "16",
            "--metrics", "--metrics-dir", str(out_dir),
        ]) == 0
        assert "RunReport" in capsys.readouterr().out
        files = sorted(out_dir.glob("*.json"))
        assert files
        for path in files:
            assert validate_report(json.loads(path.read_text())) == []
