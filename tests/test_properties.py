"""Property-based tests (hypothesis) on the core invariants.

The heavyweight property at the bottom — random affine kernels run on all
three executions and compared word-for-word — is the strongest correctness
statement in the suite: it fuzzes the IR, both code generators, both
machine models, the queues, the stream engine and the memory system
against the reference interpreter simultaneously.
"""

from collections import deque

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import MemoryConfig
from repro.core import StreamDescriptor, StreamEngine, StreamKind
from repro.errors import LoweringError
from repro.isa import (
    Imm,
    Instruction,
    OPINFO,
    Op,
    Program,
    Reg,
    assemble,
    decode_program,
    disassemble,
    encode_program,
)
from repro.isa.operands import QueueSpace, Queue
from repro.kernels import (
    ArrayDecl,
    Assign,
    BinOp,
    Const,
    Kernel,
    Loop,
    Reduce,
    Ref,
    Select,
    Cmp,
    Affine,
    UnOp,
    run_reference,
)
from repro.kernels import Computed as ComputedOf
from repro.kernels import Indirect as IndirectOf
from repro.kernels.regalloc import RegAlloc
from repro.memory import BankedMemory, MainMemory
from repro.queues import OperandQueue
from repro.harness.runner import run_on_scalar, run_on_sma

# ---------------------------------------------------------------------------
# queues
# ---------------------------------------------------------------------------


@given(
    st.lists(
        st.one_of(
            st.tuples(st.just("push"), st.integers(0, 100)),
            st.tuples(st.just("pop"), st.just(0)),
        ),
        max_size=60,
    ),
    st.integers(1, 8),
)
def test_queue_behaves_like_fifo(ops, capacity):
    q = OperandQueue("q", capacity)
    model: deque = deque()
    for op, value in ops:
        if op == "push":
            if q.can_reserve():
                q.push(value)
                model.append(value)
            else:
                assert len(model) == capacity
        else:
            if q.head_ready():
                assert q.pop() == model.popleft()
            else:
                assert not model


@given(st.lists(st.integers(0, 1000), min_size=1, max_size=30),
       st.data())
def test_queue_out_of_order_fill_preserves_order(values, data):
    q = OperandQueue("q", len(values))
    tokens = [q.reserve() for _ in values]
    fill_order = data.draw(st.permutations(list(range(len(values)))))
    popped = []
    for idx in fill_order:
        q.fill(tokens[idx], values[idx])
        while q.head_ready():
            popped.append(q.pop())
    assert popped == values


# ---------------------------------------------------------------------------
# memory
# ---------------------------------------------------------------------------


@given(
    st.lists(
        st.tuples(
            st.booleans(),                    # is_write
            st.integers(0, 63),               # addr
            st.floats(-1e6, 1e6, allow_nan=False),
        ),
        max_size=50,
    ),
    st.integers(1, 8),   # banks
    st.integers(1, 8),   # latency
)
def test_banked_memory_matches_flat_model(ops, banks, latency):
    cfg = MemoryConfig(size=64, num_banks=banks, latency=latency,
                       bank_busy=1, accepts_per_cycle=1)
    mem = BankedMemory(MainMemory(64), cfg)
    model = np.zeros(64)
    results: list[tuple[float, float]] = []
    now = 0
    for is_write, addr, value in ops:
        while True:
            mem.tick(now)
            if mem.can_accept(addr, now):
                break
            now += 1
        if is_write:
            mem.try_issue(addr, now, is_write=True, value=value)
            model[addr] = value
        else:
            expected = model[addr]
            mem.try_issue(
                addr, now,
                on_complete=lambda got, want=expected: results.append(
                    (got, want)
                ),
            )
        now += 1
    for t in range(now, now + latency + 1):
        mem.tick(t)
    assert mem.quiescent()
    for got, want in results:
        assert got == want


@given(
    st.integers(0, 40),       # base
    st.integers(-3, 3),       # stride
    st.integers(0, 12),       # count
)
def test_load_stream_delivers_exact_sequence(base, stride, count):
    if stride <= 0:
        base += 40  # keep addresses in range for negative/zero strides
    addrs = [base + i * stride for i in range(count)]
    if any(a < 0 or a >= 128 for a in addrs):
        return
    storage = MainMemory(128)
    storage.load_array(0, np.arange(128, dtype=float))
    mem = BankedMemory(storage, MemoryConfig(size=128, latency=2,
                                             bank_busy=1))
    q = OperandQueue("q", 4)
    engine = StreamEngine(mem, max_streams=1)
    engine.start(StreamDescriptor(StreamKind.LOAD, base, count, stride,
                                  target=q))
    got = []
    for t in range(400):
        mem.tick(t)
        engine.tick(t)
        while q.head_ready():
            got.append(q.pop())
        if engine.idle() and mem.quiescent() and len(got) == count:
            break
    assert got == [float(a) for a in addrs]


# ---------------------------------------------------------------------------
# ISA round-trips over random programs
# ---------------------------------------------------------------------------

_REG = st.builds(Reg, st.integers(0, 31))
_INT_IMM = st.builds(Imm, st.integers(-(2**31), 2**31))
_FLOAT_IMM = st.builds(
    Imm, st.floats(allow_nan=False, allow_infinity=False, width=64)
)
_QUEUE = st.one_of(
    st.builds(Queue, st.just(QueueSpace.LQ), st.integers(0, 7)),
    st.builds(Queue, st.just(QueueSpace.SDQ), st.integers(0, 3)),
    st.builds(Queue, st.just(QueueSpace.IQ), st.integers(0, 3)),
    st.just(Queue(QueueSpace.SAQ)),
    st.just(Queue(QueueSpace.EAQ)),
    st.just(Queue(QueueSpace.EBQ)),
)
_SRC = st.one_of(_REG, _INT_IMM, _FLOAT_IMM, _QUEUE)
_DEST = st.one_of(_REG, _QUEUE)


@st.composite
def _instructions(draw, program_len=8):
    op = draw(st.sampled_from(list(Op)))
    info = OPINFO[op]
    dest = draw(_DEST) if info.has_dest else None
    srcs = []
    for i in range(info.n_src):
        if info.is_branch and i == info.target_index:
            srcs.append(Imm(draw(st.integers(0, program_len))))
        else:
            srcs.append(draw(_SRC))
    if op is Op.DECBNZ:
        dest = draw(_REG)  # dest must be a register for decbnz semantics
    return Instruction(op, dest, tuple(srcs))


def _clamp_targets(instrs):
    """Branch targets of a finalized program lie in [0, len]; clamp the
    fuzzer's raw targets to keep generated programs well-formed."""
    fixed = []
    for instr in instrs:
        if instr.info.is_branch:
            target = min(instr.branch_target(), len(instrs))
            instr = instr.with_target(target)
        fixed.append(instr)
    return fixed


@given(st.lists(_instructions(), min_size=1, max_size=12))
def test_encoding_roundtrip_random_programs(instrs):
    prog = Program("fuzz", tuple(_clamp_targets(instrs)), {})
    decoded = decode_program(encode_program(prog))
    assert decoded.instructions == prog.instructions


@given(st.lists(_instructions(), min_size=1, max_size=12))
def test_disassemble_assemble_roundtrip(instrs):
    prog = Program("fuzz", tuple(_clamp_targets(instrs)), {})
    text = disassemble(prog)
    again = assemble(text, require_halt=False)
    assert again.instructions[: len(prog)] == prog.instructions


# ---------------------------------------------------------------------------
# register allocator
# ---------------------------------------------------------------------------


@given(st.lists(st.booleans(), max_size=80))
def test_regalloc_never_hands_out_duplicates(ops):
    alloc = RegAlloc()
    live: list = []
    for do_alloc in ops:
        if do_alloc:
            try:
                reg = alloc.alloc()
            except LoweringError:
                assert len(live) == 31
                continue
            assert reg not in live
            live.append(reg)
        elif live:
            alloc.free(live.pop())
    assert alloc.in_use == len(live)


# ---------------------------------------------------------------------------
# random-kernel differential testing
# ---------------------------------------------------------------------------

_ARR_NAMES = ("a", "b", "c")
_SAFE_BINOPS = ("+", "-", "*", "min", "max")


@st.composite
def _exprs(draw, depth=0):
    if depth >= 3 or draw(st.booleans()):
        if draw(st.booleans()):
            return Const(draw(st.floats(-4, 4, allow_nan=False).map(
                lambda f: round(f, 3)
            )))
        arr = draw(st.sampled_from(_ARR_NAMES))
        offset = draw(st.integers(0, 2))
        return Ref(arr, Affine.of(offset, i=1))
    kind = draw(st.integers(0, 2))
    if kind == 0:
        return BinOp(
            draw(st.sampled_from(_SAFE_BINOPS)),
            draw(_exprs(depth=depth + 1)),
            draw(_exprs(depth=depth + 1)),
        )
    if kind == 1:
        return UnOp(
            draw(st.sampled_from(("abs", "neg"))),
            draw(_exprs(depth=depth + 1)),
        )
    return Select(
        Cmp(
            draw(st.sampled_from(("<", "<=", "==", "!="))),
            draw(_exprs(depth=depth + 1)),
            draw(_exprs(depth=depth + 1)),
        ),
        draw(_exprs(depth=depth + 1)),
        draw(_exprs(depth=depth + 1)),
    )


@st.composite
def _random_kernels(draw):
    """Streaming kernels: read a/b/c, write disjoint outputs x/y —
    guaranteed to satisfy the SMA lowering's hazard rules by construction.
    """
    n = draw(st.integers(3, 12))
    n_stmts = draw(st.integers(1, 2))
    stmts = tuple(
        Assign(Ref(out, Affine.of(0, i=1)), draw(_exprs()))
        for out in ("x", "y")[:n_stmts]
    )
    arrays = tuple(
        ArrayDecl(name, n + 2) for name in (*_ARR_NAMES, "x", "y")
    )
    kernel = Kernel("fuzzed", arrays, (Loop("i", n, stmts),))
    return kernel, n


@settings(max_examples=30, deadline=None)
@given(_random_kernels(), st.integers(0, 2**31))
def test_random_streaming_kernels_agree_everywhere(kernel_n, seed):
    kernel, n = kernel_n
    rng = np.random.default_rng(seed)
    inputs = {
        decl.name: rng.uniform(-2, 2, decl.size) for decl in kernel.arrays
    }
    try:
        _check_all_machines(kernel, inputs)
    except LoweringError:
        # a fuzzed kernel may exceed the 8 architectural load queues (or
        # the vector machine's register file); rejecting it cleanly is
        # correct behaviour, so the example passes vacuously
        # (pytest.skip would retire the whole test)
        return


def _check_all_machines(kernel, inputs):
    from repro.harness.runner import run_on_vector
    from repro.kernels.lower_vector import VectorizationError

    golden = run_reference(kernel, inputs)
    runs = [
        run_on_sma(kernel, inputs),
        run_on_sma(kernel, inputs, use_streams=False),
        run_on_scalar(kernel, inputs),
    ]
    try:
        runs.append(run_on_vector(kernel, inputs))
    except VectorizationError:
        pass  # rejection is legal behaviour for irregular fuzz kernels
    for name, want in golden.items():
        for run in runs:
            np.testing.assert_array_equal(
                run.outputs[name], want,
                err_msg=f"{run.machine}/{name}\n{kernel.pretty()}",
            )


@settings(max_examples=20, deadline=None)
@given(
    st.integers(3, 12),                       # n
    st.sampled_from(("+", "-", "*", "min", "max")),  # combine op
    st.sampled_from(("+", "*")),              # carried op
    st.integers(0, 2**31),                    # seed
)
def test_random_recurrence_kernels(n, combine, carried_op, seed):
    """Distance-1 recurrences with random operators: exercises register
    forwarding in the SMA lowering against sequential semantics."""
    kernel = Kernel(
        "fuzz_rec",
        (ArrayDecl("w", n + 1), ArrayDecl("b", n + 1), ArrayDecl("x", n + 1)),
        (Loop("i", n, (
            Assign(
                Ref("w", Affine.of(0, i=1)),
                BinOp(
                    combine,
                    BinOp(carried_op, Ref("w", Affine.of(-1, i=1)),
                          Ref("b", Affine.of(0, i=1))),
                    Ref("x", Affine.of(0, i=1)),
                ),
            ),
        ), start=1),),
    )
    rng = np.random.default_rng(seed)
    inputs = {
        "w": np.concatenate([[0.5], np.zeros(n)]),
        "b": rng.uniform(0.1, 0.9, n + 1),
        "x": rng.uniform(0.1, 0.9, n + 1),
    }
    _check_all_machines(kernel, inputs)


@settings(max_examples=20, deadline=None)
@given(
    st.integers(3, 10),       # n (table and vector size)
    st.booleans(),            # permutation vs arbitrary indices
    st.integers(0, 2**31),
)
def test_random_gather_kernels(n, permute, seed):
    """Structured gathers with random index arrays."""
    kernel = Kernel(
        "fuzz_gather",
        (ArrayDecl("e", n), ArrayDecl("ix", n), ArrayDecl("y", n)),
        (Loop("i", n, (
            Assign(
                Ref("y", Affine.of(0, i=1)),
                BinOp("+", Ref("e", IndirectOf(Ref("ix", Affine.of(0, i=1)))),
                      Const(1.0)),
            ),
        )),),
    )
    rng = np.random.default_rng(seed)
    ix = (rng.permutation(n) if permute
          else rng.integers(0, n, n)).astype(float)
    inputs = {"e": rng.uniform(0, 1, n), "ix": ix, "y": np.zeros(n)}
    _check_all_machines(kernel, inputs)


@settings(max_examples=20, deadline=None)
@given(
    st.integers(2, 6),    # rows
    st.integers(4, 8),    # width
    st.integers(0, 2),    # read offset within the row
    st.integers(0, 2**31),
)
def test_random_nested_kernels(rows, width, offset, seed):
    """2-deep loop nests with outer-variable-dependent stream bases."""
    size = rows * width + offset
    kernel = Kernel(
        "fuzz_nest",
        (ArrayDecl("a", size), ArrayDecl("o", size)),
        (Loop("j", rows, (
            Loop("i", width, (
                Assign(
                    Ref("o", Affine.of(0, j=width, i=1)),
                    BinOp("*", Ref("a", Affine.of(offset, j=width, i=1)),
                          Const(2.0)),
                ),
            )),
        )),),
    )
    rng = np.random.default_rng(seed)
    inputs = {"a": rng.uniform(0, 1, size), "o": np.zeros(size)}
    _check_all_machines(kernel, inputs)


@settings(max_examples=15, deadline=None)
@given(
    st.integers(2, 5),    # rows
    st.integers(3, 9),    # cols
    st.sampled_from(("+", "min", "max")),
    st.integers(0, 2**31),
)
def test_random_per_row_reduction_kernels(rows, cols, op, seed):
    """Per-row reductions (matvec shape): the accumulator must reset at
    every entry of the innermost loop on all machines."""
    kernel = Kernel(
        "fuzz_rowred",
        (ArrayDecl("a", rows * cols), ArrayDecl("x", cols),
         ArrayDecl("y", rows)),
        (Loop("j", rows, (
            Loop("i", cols, (
                Reduce(op, Ref("y", Affine.of(0, j=1)),
                       BinOp("*", Ref("a", Affine.of(0, j=cols, i=1)),
                             Ref("x", Affine.of(0, i=1))),
                       init=0.25),
            )),
        )),),
    )
    rng = np.random.default_rng(seed)
    inputs = {
        "a": rng.uniform(-1, 1, rows * cols),
        "x": rng.uniform(-1, 1, cols),
        "y": np.zeros(rows),
    }
    _check_all_machines(kernel, inputs)


@settings(max_examples=20, deadline=None)
@given(
    st.integers(3, 16),
    st.sampled_from(("+", "min", "max")),
    st.floats(-2, 2, allow_nan=False),
    st.integers(0, 2**31),
)
def test_random_reduction_kernels(n, op, init, seed):
    """Reductions with random operators and init values."""
    kernel = Kernel(
        "fuzz_red",
        (ArrayDecl("x", n), ArrayDecl("z", n), ArrayDecl("out", 1)),
        (Loop("i", n, (
            Reduce(op, Ref("out", Affine.of(0)),
                   BinOp("*", Ref("x", Affine.of(0, i=1)),
                         Ref("z", Affine.of(0, i=1))),
                   init=init),
        )),),
    )
    rng = np.random.default_rng(seed)
    inputs = {
        "x": rng.uniform(-1, 1, n),
        "z": rng.uniform(-1, 1, n),
        "out": np.zeros(1),
    }
    _check_all_machines(kernel, inputs)


# ---------------------------------------------------------------------------
# loss-of-decoupling event accounting across every execution engine
# ---------------------------------------------------------------------------
#
# The naive step counts a LOD episode on any transition into a ``lod_*``
# stall, while the fast step's FROMQ path tests ``cause != "iq_empty"``
# and the batch engine keeps its own per-lane transition mask.  A kernel
# whose AP alternates ``lod_eaq`` -> ``iq_empty`` -> ``lod_eaq`` every
# element is exactly where those three conditions could drift apart, so
# the property pins (lod_events, every stall bucket, cycles) across all
# registered schedulers, the batch engine, and a snapshot/restore taken
# in the middle of a LOD stall.


def _lod_mix_kernel(n: int) -> Kernel:
    """Per-element lowering interleaves a gather (``fromq iq`` ->
    ``iq_empty``) with an EP-computed subscript (``fromq eaq`` ->
    ``lod_eaq``) in every iteration."""
    i1 = Affine.of(i=1)
    return Kernel(
        "lod_mix",
        (ArrayDecl("out", n), ArrayDecl("a", n),
         ArrayDecl("ix", n), ArrayDecl("v", n)),
        (Loop("i", n, (
            Assign(Ref("out", i1), BinOp(
                "+",
                Ref("a", IndirectOf(Ref("ix", i1))),
                Ref("a", ComputedOf(Ref("v", i1))),
            )),
        )),),
    )


@settings(max_examples=10, deadline=None)
@given(
    n=st.integers(min_value=4, max_value=12),
    latency=st.integers(min_value=6, max_value=32),
    depth=st.integers(min_value=2, max_value=8),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_lod_events_agree_across_engines(n, latency, depth, seed):
    import json as _json

    from repro.batch.engine import LaneEngine
    from repro.config import QueueConfig, SMAConfig
    from repro.core import SMAMachine
    from repro.harness.runner import _fit_memory, _load_inputs
    from repro.kernels.lower_sma import lower_sma

    kernel = _lod_mix_kernel(n)
    rng = np.random.default_rng(seed)
    inputs = {
        "out": np.zeros(n),
        "a": rng.uniform(1.0, 2.0, n),
        "ix": rng.permutation(n).astype(np.float64),
        "v": rng.permutation(n).astype(np.float64),
    }
    lowered = lower_sma(kernel, use_streams=False)
    cfg = SMAConfig(
        memory=_fit_memory(
            MemoryConfig(latency=latency, bank_busy=max(1, latency // 2)),
            lowered.layout,
        ),
        queues=QueueConfig(
            load_queue_depth=depth, store_data_depth=depth,
            store_addr_depth=depth, index_queue_depth=depth,
        ),
    )

    def fresh():
        m = SMAMachine(
            lowered.access_program, lowered.execute_program, cfg
        )
        _load_inputs(m, lowered.layout, kernel, inputs)
        return m

    baseline = fresh().run(scheduler="naive")
    key = (baseline.lod_events, dict(baseline.ap.stall_cycles),
           baseline.cycles)
    # the pattern under test actually occurred
    assert baseline.ap.stall_cycles.get("lod_eaq", 0) > 0
    assert baseline.ap.stall_cycles.get("iq_empty", 0) > 0
    assert baseline.lod_events >= 2

    for scheduler in SMAMachine.SCHEDULERS:
        res = fresh().run(scheduler=scheduler)
        got = (res.lod_events, dict(res.ap.stall_cycles), res.cycles)
        assert got == key, scheduler

    # batch engine, staged exactly like dispatch.run_group
    touched = lowered.layout.end + 16
    for program in (lowered.access_program, lowered.execute_program):
        for base, values in program.data:
            touched = max(touched, base + len(values))
    image = np.zeros(min(touched, cfg.memory.size), dtype=np.float64)
    for program in (lowered.access_program, lowered.execute_program):
        for base, values in program.data:
            image[base:base + len(values)] = np.asarray(
                values, dtype=np.float64
            )
    for decl in kernel.arrays:
        arr = np.asarray(inputs[decl.name], dtype=np.float64)
        image[lowered.layout.base(decl.name):][:arr.shape[0]] = arr
    lane = LaneEngine(
        lowered.access_program, lowered.execute_program, [cfg],
        image, logical_size=cfg.memory.size,
    ).run().stats.lane_dict(0)
    assert lane["lod_events"] == key[0]
    assert lane["ap_stalls"] == key[1]
    assert lane["cycles"] == key[2]

    # snapshot/restore taken while the AP is parked in a lod_* stall
    source = fresh()
    for _ in range(200_000):
        if (source.ap._stalled_on or "").startswith("lod_"):
            break
        source.step_cycle()
    else:
        raise AssertionError("never reached a lod_* stall")
    snap = _json.loads(_json.dumps(source.snapshot()))
    resumed = fresh()
    resumed.restore(snap)
    res = resumed.run()
    assert (res.lod_events, dict(res.ap.stall_cycles),
            res.cycles) == key
