"""OperandQueue protocol and QueueFile resolution."""

import pytest

from repro.config import SMAConfig
from repro.errors import QueueError
from repro.isa import EAQ, EBQ, SAQ, QueueSpace
from repro.isa.operands import Queue, iq, lq, sdq
from repro.queues import OperandQueue, QueueFile


class TestProtocol:
    def test_push_pop_fifo(self):
        q = OperandQueue("q", 4)
        for v in (1, 2, 3):
            q.push(v)
        assert [q.pop(), q.pop(), q.pop()] == [1, 2, 3]

    def test_capacity(self):
        q = OperandQueue("q", 2)
        q.push(1)
        q.push(2)
        assert not q.can_reserve()
        with pytest.raises(QueueError):
            q.reserve()

    def test_reserved_slot_blocks_pop_until_filled(self):
        q = OperandQueue("q", 4)
        token = q.reserve()
        assert not q.head_ready()
        with pytest.raises(QueueError):
            q.pop()
        q.fill(token, 42)
        assert q.head_ready()
        assert q.pop() == 42

    def test_out_of_order_fill_preserves_fifo(self):
        q = OperandQueue("q", 4)
        first = q.reserve()
        second = q.reserve()
        q.fill(second, "b")
        assert not q.head_ready()  # head (first) still unfilled
        q.fill(first, "a")
        assert q.pop() == "a"
        assert q.pop() == "b"

    def test_double_fill_rejected(self):
        q = OperandQueue("q", 2)
        token = q.reserve()
        q.fill(token, 1)
        with pytest.raises(QueueError):
            q.fill(token, 2)

    def test_peek_does_not_consume(self):
        q = OperandQueue("q", 2)
        q.push(7)
        assert q.peek() == 7
        assert q.pop() == 7

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            OperandQueue("q", 0)


class TestStats:
    def test_traffic_counts(self):
        q = OperandQueue("q", 4)
        q.push(1)
        q.push(2)
        q.pop()
        assert q.stats.pushes == 2
        assert q.stats.pops == 1

    def test_occupancy_sampling(self):
        q = OperandQueue("q", 4)
        q.sample()          # 0
        q.push(1)
        q.push(2)
        q.sample()          # 2
        assert q.stats.samples == 2
        assert q.stats.occupancy_sum == 2
        assert q.stats.occupancy_max == 2
        assert q.stats.mean_occupancy == 1.0
        assert q.stats.histogram == {0: 1, 2: 1}

    def test_stall_notes(self):
        q = OperandQueue("q", 1)
        q.note_empty_stall()
        q.note_full_stall()
        assert q.stats.empty_stalls == 1
        assert q.stats.full_stalls == 1


class TestQueueFile:
    def test_resolution_all_spaces(self):
        qf = QueueFile(SMAConfig())
        assert qf.resolve(lq(3)).name == "lq3"
        assert qf.resolve(sdq(1)).name == "sdq1"
        assert qf.resolve(iq(0)).name == "iq0"
        assert qf.resolve(SAQ).name == "saq"
        assert qf.resolve(EAQ).name == "eaq"
        assert qf.resolve(EBQ).name == "ebq"

    def test_out_of_range_queue(self):
        qf = QueueFile(SMAConfig())
        with pytest.raises(QueueError):
            qf.resolve(Queue(QueueSpace.LQ, 15))

    def test_depths_follow_config(self):
        cfg = SMAConfig()
        qf = QueueFile(cfg)
        assert qf.load[0].capacity == cfg.queues.load_queue_depth
        assert qf.ep_to_ap_branch.capacity == cfg.queues.ep_to_ap_branch_depth

    def test_all_drained(self):
        qf = QueueFile(SMAConfig())
        assert qf.all_drained()
        qf.load[0].push(1)
        assert not qf.all_drained()
        qf.load[0].pop()
        assert qf.all_drained()
