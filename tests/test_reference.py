"""Reference interpreter vs closed-form NumPy formulas."""

import numpy as np
import pytest

from repro.errors import KernelError
from repro.kernels import get_kernel, run_reference
from repro.kernels.suite import at, c
from repro.kernels import ArrayDecl, Assign, Kernel, Loop, Reduce


class TestAgainstClosedForm:
    def test_daxpy(self):
        spec = get_kernel("daxpy")
        kernel, inputs = spec.instantiate(32)
        out = run_reference(kernel, inputs)
        np.testing.assert_allclose(
            out["y"], 2.5 * inputs["x"] + inputs["y"]
        )

    def test_hydro(self):
        kernel, inputs = get_kernel("hydro").instantiate(32)
        out = run_reference(kernel, inputs)
        y, z = inputs["y"], inputs["z"]
        want = 0.84 + y * (1.1 * z[10:42] + 0.37 * z[11:43])
        np.testing.assert_allclose(out["x"], want)

    def test_inner_product(self):
        kernel, inputs = get_kernel("inner_product").instantiate(32)
        out = run_reference(kernel, inputs)
        assert out["out"][0] == pytest.approx(
            float(np.dot(inputs["x"], inputs["z"]))
        )

    def test_first_sum_prefix(self):
        kernel, inputs = get_kernel("first_sum").instantiate(16)
        out = run_reference(kernel, inputs)
        want = np.cumsum(inputs["y"])
        want[0] = inputs["x"][0]
        np.testing.assert_allclose(out["x"][1:], np.cumsum(inputs["y"][1:]))

    def test_pic_gather(self):
        kernel, inputs = get_kernel("pic_gather").instantiate(32)
        out = run_reference(kernel, inputs)
        ix = inputs["ix"].astype(int)
        np.testing.assert_allclose(
            out["vx"], inputs["vx"] + inputs["e"][ix]
        )

    def test_pic_scatter(self):
        kernel, inputs = get_kernel("pic_scatter").instantiate(32)
        out = run_reference(kernel, inputs)
        ir = inputs["ir"].astype(int)
        want = inputs["rho"].copy()
        want[ir] += 0.8 * inputs["w"]
        np.testing.assert_allclose(out["rho"], want)

    def test_threshold(self):
        kernel, inputs = get_kernel("threshold").instantiate(32)
        out = run_reference(kernel, inputs)
        x = inputs["x"]
        np.testing.assert_allclose(out["y"], np.where(x > 0.5, x, 0.0))

    def test_max_abs(self):
        kernel, inputs = get_kernel("max_abs").instantiate(32)
        out = run_reference(kernel, inputs)
        assert out["out"][0] == pytest.approx(np.abs(inputs["x"]).max())

    def test_reverse_copy(self):
        kernel, inputs = get_kernel("reverse_copy").instantiate(32)
        out = run_reference(kernel, inputs)
        np.testing.assert_allclose(out["y"], inputs["x"][::-1])

    def test_stencil2d(self):
        kernel, inputs = get_kernel("stencil2d").instantiate(64)
        out = run_reference(kernel, inputs)
        a = inputs["a"].reshape(-1, 34)
        want = 0.3 * a[:, :-2] + 0.4 * a[:, 1:-1] + 0.3 * a[:, 2:]
        got = out["out"].reshape(-1, 34)[:, 1:-1]
        np.testing.assert_allclose(got, want)


class TestInputContract:
    def test_missing_input_array(self):
        kernel, inputs = get_kernel("daxpy").instantiate(8)
        del inputs["y"]
        with pytest.raises(KernelError, match="missing input"):
            run_reference(kernel, inputs)

    def test_extra_input_array(self):
        kernel, inputs = get_kernel("daxpy").instantiate(8)
        inputs["zzz"] = np.zeros(4)
        with pytest.raises(KernelError, match="undeclared"):
            run_reference(kernel, inputs)

    def test_wrong_shape(self):
        kernel, inputs = get_kernel("daxpy").instantiate(8)
        inputs["x"] = np.zeros(9)
        with pytest.raises(KernelError, match="shape"):
            run_reference(kernel, inputs)

    def test_inputs_not_mutated(self):
        kernel, inputs = get_kernel("daxpy").instantiate(8)
        before = inputs["y"].copy()
        run_reference(kernel, inputs)
        np.testing.assert_array_equal(inputs["y"], before)

    def test_subscript_out_of_range(self):
        from repro.kernels.suite import gat
        kernel = Kernel(
            "bad",
            (ArrayDecl("a", 4), ArrayDecl("ix", 4)),
            (Loop("i", 4, (
                Assign(at("a", i=1), gat("a", at("ix", i=1))),
            )),),
        )
        with pytest.raises(KernelError, match="out of range"):
            run_reference(kernel, {
                "a": np.zeros(4), "ix": np.array([0.0, 1.0, 2.0, 99.0]),
            })

    def test_non_integral_subscript(self):
        from repro.kernels.suite import gat
        kernel = Kernel(
            "bad2",
            (ArrayDecl("a", 4), ArrayDecl("ix", 4)),
            (Loop("i", 4, (
                Assign(at("a", i=1), gat("a", at("ix", i=1))),
            )),),
        )
        with pytest.raises(KernelError, match="non-integral"):
            run_reference(kernel, {
                "a": np.zeros(4), "ix": np.array([0.0, 1.5, 2.0, 3.0]),
            })


class TestReductionSemantics:
    def test_init_value_respected(self):
        kernel = Kernel(
            "red",
            (ArrayDecl("x", 4), ArrayDecl("out", 1)),
            (Loop("i", 4, (
                Reduce("+", at("out"), at("x", i=1), init=100.0),
            )),),
        )
        out = run_reference(kernel, {
            "x": np.ones(4), "out": np.zeros(1),
        })
        assert out["out"][0] == 104.0

    def test_reduce_alongside_assign(self):
        kernel = Kernel(
            "both",
            (ArrayDecl("x", 4), ArrayDecl("y", 4), ArrayDecl("out", 1)),
            (Loop("i", 4, (
                Assign(at("y", i=1), at("x", i=1)),
                Reduce("+", at("out"), at("x", i=1)),
            )),),
        )
        x = np.array([1.0, 2.0, 3.0, 4.0])
        out = run_reference(kernel, {
            "x": x, "y": np.zeros(4), "out": np.zeros(1),
        })
        np.testing.assert_array_equal(out["y"], x)
        assert out["out"][0] == 10.0
