"""Scalar baseline: semantics and the blocking-load / cache timing models."""

import pytest

from repro.baseline import ScalarMachine
from repro.config import CacheConfig, MemoryConfig, ScalarConfig
from repro.errors import SimulationError
from repro.isa import assemble


def run_program(src, config=None, setup=None):
    m = ScalarMachine(assemble(src), config or ScalarConfig())
    if setup:
        setup(m)
    return m, m.run()


class TestSemantics:
    def test_load_store(self):
        m, res = run_program("""
            mov r1, #40
            load r2, r1, #2
            add r2, r2, #1.5
            store r2, r1, #3
            halt
        """, setup=lambda m: m.memory.write(42, 2.0))
        assert m.memory.read(43) == 3.5
        assert res.loads == 1 and res.stores == 1

    def test_loop(self):
        m, _ = run_program("""
            mov r1, #10
            mov r2, #0
            t: add r2, r2, #3
            decbnz r1, t
            halt
        """)
        assert m.registers[2] == 30

    def test_branches(self):
        m, _ = run_program("""
            mov r1, #1
            bnez r1, yes
            mov r2, #-1
            yes: mov r3, #7
            halt
        """)
        assert m.registers[2] == 0 and m.registers[3] == 7

    def test_illegal_op(self):
        with pytest.raises(SimulationError, match="not a valid scalar"):
            ScalarMachine(assemble("streamld lq0, r1, #1, #4\nhalt"))

    def test_cycle_budget(self):
        m = ScalarMachine(assemble("t: jmp t\nhalt"))
        with pytest.raises(SimulationError, match="cycle budget"):
            m.run(max_cycles=100)


class TestBlockingLoadTiming:
    def test_load_costs_latency(self):
        cfg = ScalarConfig(memory=MemoryConfig(latency=10, bank_busy=1))
        _, res_with = run_program("load r1, r2, #0\nhalt", cfg)
        _, res_without = run_program("mov r1, #0\nhalt", cfg)
        assert res_with.cycles - res_without.cycles == 10
        assert res_with.memory_stall_cycles == 10

    def test_store_does_not_block(self):
        cfg = ScalarConfig(memory=MemoryConfig(latency=10, bank_busy=1))
        _, res = run_program("store r1, r2, #0\nhalt", cfg)
        assert res.memory_stall_cycles == 0

    def test_bank_conflict_waits(self):
        # two stores to the same bank back-to-back: second waits busy time
        cfg = ScalarConfig(
            memory=MemoryConfig(latency=4, bank_busy=4, num_banks=8)
        )
        _, res = run_program("""
            store r1, #0, #0
            store r1, #8, #0
            halt
        """, cfg)
        assert res.bank_conflict_waits > 0


class TestCachedTiming:
    def test_cache_speeds_up_reuse(self):
        mem = MemoryConfig(latency=16, bank_busy=8)
        src = """
            mov r1, #32
            t: load r2, #100, #0
            decbnz r1, t
            halt
        """
        _, uncached = run_program(src, ScalarConfig(memory=mem))
        _, cached = run_program(
            src, ScalarConfig(memory=mem, cache=CacheConfig())
        )
        assert cached.cycles < uncached.cycles / 3
        assert cached.cache.hits == 31

    def test_writeback_flush_charged_at_halt(self):
        cfg = ScalarConfig(cache=CacheConfig())
        m1, dirty = run_program("store r1, #0, #0\nhalt", cfg)
        m2, clean = run_program("load r1, #0, #0\nhalt", cfg)
        assert dirty.cycles > clean.cycles  # flush of the dirty line

    def test_functional_result_identical_with_cache(self):
        src = """
            mov r1, #5
            mov r3, #100
            t: load r2, r3, #0
            add r2, r2, #1.0
            store r2, r3, #0
            add r3, r3, #1
            decbnz r1, t
            halt
        """
        def setup(m):
            m.load_array(100, [1.0, 2.0, 3.0, 4.0, 5.0])
        m1, _ = run_program(src, ScalarConfig(), setup=setup)
        m2, _ = run_program(
            src, ScalarConfig(cache=CacheConfig()), setup=setup
        )
        assert m1.dump_array(100, 5).tolist() == m2.dump_array(100, 5).tolist()


class TestSerialization:
    def test_to_dict_with_and_without_cache(self):
        import json

        _, plain = run_program("load r1, #0, #0\nhalt")
        payload = json.loads(json.dumps(plain.to_dict()))
        assert payload["loads"] == 1 and "cache_hits" not in payload
        _, cached = run_program(
            "load r1, #0, #0\nhalt", ScalarConfig(cache=CacheConfig())
        )
        payload = json.loads(json.dumps(cached.to_dict()))
        assert payload["cache_misses"] == 1
