"""The sweep service: protocol round-trips, the content-addressed
store, sliced execution, the coalescing scheduler, and the HTTP server
end to end.

The e2e class runs a real ``SweepServer`` on a loopback socket with
real process-pool workers and drives it from blocking clients in
threads — concurrent duplicate-heavy submissions must coalesce, results
must be byte-identical to serial :func:`repro.harness.jobs.run_job`,
byte-identical results must share one blob, and a SIGKILLed pool worker
must cost at most one retry (never a wrong or lost result).
"""

import asyncio
import json
import signal
import threading
import time
from concurrent.futures.process import BrokenProcessPool

import pytest

from repro.config import (
    MemoryConfig,
    QueueConfig,
    ScalarConfig,
    SMAConfig,
    SpeculationConfig,
)
from repro.harness.jobs import Job, run_job
from repro.harness.parallel import HarnessPolicy, job_key, run_jobs
from repro.service import (
    ContentStore,
    JobScheduler,
    ProtocolError,
    QueueFullError,
    SchedulerDraining,
    ServiceClient,
    ServiceError,
    SweepServer,
    job_from_spec,
    job_to_spec,
)
from repro.service.protocol import jobs_from_payload
from repro.service.slices import run_job_slice, sliceable
from repro.service.store import result_digest


def canonical(result: dict) -> str:
    return json.dumps(result, sort_keys=True, separators=(",", ":"))


class TestProtocol:
    JOBS = [
        Job("sma", "daxpy", 64, check=True),
        Job("sma", "pic_gather", 48, lod_variant="addr"),
        Job("sma-nostream", "tridiag", 32, lod_variant="branch"),
        Job("scalar", "hydro", 32,
            scalar_config=ScalarConfig(memory=MemoryConfig(latency=16))),
        Job("cluster", "daxpy", 32, nodes=3, seed=7),
        Job("vector", "daxpy", 64,
            memory_config=MemoryConfig(latency=4)),
        Job("sma", "daxpy", 64,
            sma_config=SMAConfig(
                memory=MemoryConfig(latency=32, num_banks=16),
                queues=QueueConfig(load_queue_depth=4),
                speculation=SpeculationConfig(accuracy=0.5, seed=3),
            )),
    ]

    @pytest.mark.parametrize(
        "job", JOBS, ids=lambda j: f"{j.machine}-{j.kernel}"
    )
    def test_spec_round_trips(self, job):
        spec = job_to_spec(job)
        json.loads(json.dumps(spec))  # JSON-clean
        rebuilt = job_from_spec(json.loads(json.dumps(spec)))
        assert rebuilt == job
        # the canonical form job_key() hashes survives the wire
        assert repr(rebuilt) == repr(job)
        assert job_key(rebuilt) == job_key(job)

    def test_unknown_field_rejected(self):
        spec = job_to_spec(Job("sma", "daxpy", 64))
        spec["warp_factor"] = 9
        with pytest.raises(ProtocolError, match="warp_factor"):
            job_from_spec(spec)

    def test_invalid_value_rejected(self):
        spec = job_to_spec(Job("sma", "daxpy", 64))
        spec["machine"] = "abacus"
        with pytest.raises(ProtocolError, match="invalid Job spec"):
            job_from_spec(spec)

    def test_nested_config_validation_surfaces(self):
        spec = job_to_spec(Job("sma", "daxpy", 64,
                               sma_config=SMAConfig()))
        spec["sma_config"]["memory"] = {"latency": -1}
        with pytest.raises(ProtocolError):
            job_from_spec(spec)

    def test_payload_shape_enforced(self):
        with pytest.raises(ProtocolError, match='"jobs"'):
            jobs_from_payload({"jobs": []})
        with pytest.raises(ProtocolError, match='"jobs"'):
            jobs_from_payload([1, 2])
        jobs = jobs_from_payload(
            {"jobs": [job_to_spec(j) for j in self.JOBS[:2]]}
        )
        assert jobs == self.JOBS[:2]


class TestContentStore:
    def test_put_get_round_trip(self, tmp_path):
        store = ContentStore(tmp_path / "store")
        result = run_job(Job("sma", "daxpy", 32))
        digest = store.put("k1", result)
        assert store.get("k1") == result
        assert store.get_blob(digest) == result
        assert "k1" in store and "k2" not in store

    def test_identical_results_share_one_blob(self, tmp_path):
        """Satellite 4: two sweeps whose jobs differ only in fields
        irrelevant to the result (``buckets`` does not affect an "sma"
        run) produce distinct job keys but one blob."""
        store = ContentStore(tmp_path / "store")
        sweep_a = Job("sma", "daxpy", 32)
        sweep_b = Job("sma", "daxpy", 32, buckets=9)
        key_a, key_b = job_key(sweep_a), job_key(sweep_b)
        assert key_a != key_b
        result_a, result_b = run_job(sweep_a), run_job(sweep_b)
        assert canonical(result_a) == canonical(result_b)
        digest_a = store.put(key_a, result_a)
        digest_b = store.put(key_b, result_b)
        assert digest_a == digest_b
        assert store.result_count() == 2
        assert store.blob_count() == 1
        assert store.stats.dedup_hits == 1

    def test_corrupt_blob_quarantined(self, tmp_path):
        store = ContentStore(tmp_path / "store")
        digest = store.put("k1", {"cycles": 123})
        blob = store._blob_path(digest)
        blob.write_text('{"cycles": 9999}')  # flipped bits
        assert store.get("k1") is None
        assert not blob.exists()
        assert blob.with_name(blob.name + ".corrupt").exists()
        assert store.stats.quarantined >= 1
        # the dangling index went too: a fresh put works cleanly
        store.put("k1", {"cycles": 123})
        assert store.get("k1") == {"cycles": 123}

    def test_corrupt_index_quarantined(self, tmp_path):
        store = ContentStore(tmp_path / "store")
        store.put("k1", {"cycles": 1})
        index = store._index_path("k1")
        index.write_text("{ not json")
        assert store.get("k1") is None
        assert index.with_name(index.name + ".corrupt").exists()

    def test_digest_binds_content(self):
        assert result_digest({"a": 1, "b": 2}) == result_digest(
            {"b": 2, "a": 1}
        )
        assert result_digest({"a": 1}) != result_digest({"a": 2})

    def test_promote_and_export_interop(self, tmp_path):
        jobs = [Job("sma", "daxpy", 32), Job("scalar", "daxpy", 32)]
        cache = tmp_path / "cache"
        run_jobs(jobs, cache_dir=cache)
        store = ContentStore(tmp_path / "store")
        assert store.promote(cache) == 2
        for job in jobs:
            assert store.get(job_key(job)) == run_job(job)
        out = tmp_path / "exported"
        assert store.export(out) == 2
        # an exported store serves a harness sweep entirely from cache
        from repro.harness.parallel import harness_policy
        with harness_policy() as sweep:
            results = run_jobs(jobs, cache_dir=out)
        assert sweep.hits == 2 and sweep.executed == 0
        assert results == [run_job(j) for j in jobs]


class TestSlices:
    CASES = [
        Job("sma", "daxpy", 64, check=True),
        Job("sma", "pic_gather", 48, lod_variant="addr"),
        Job("sma-nostream", "tridiag", 32, lod_variant="branch"),
        Job("cluster", "daxpy", 32, nodes=2, check=True),
    ]

    @pytest.mark.parametrize(
        "job", CASES, ids=lambda j: f"{j.machine}-{j.kernel}"
    )
    def test_sliced_run_bit_identical(self, job):
        direct = run_job(job)
        state, hops = None, 0
        while True:
            out = run_job_slice(job, state, 41)
            if out["done"]:
                sliced = out["result"]
                break
            state, hops = out["state"], hops + 1
            assert out["cycle"] > 0
        assert hops > 1, "slice budget must actually split the run"
        assert canonical(sliced) == canonical(direct)

    def test_snapshot_is_json_portable(self):
        """Checkpoints cross process (and machine) boundaries as JSON;
        a round-trip through the serializer must not change the run."""
        job = Job("sma", "daxpy", 64)
        direct = run_job(job)
        out = run_job_slice(job, None, 50)
        assert not out["done"]
        state = json.loads(json.dumps(out["state"]))
        while not out["done"]:
            out = run_job_slice(job, state, 50)
            state = out.get("state")
        assert canonical(out["result"]) == canonical(direct)

    def test_stale_checkpoint_restarts_fresh(self):
        job = Job("sma", "daxpy", 64)
        out = run_job_slice(job, None, 50)
        state = dict(out["state"])
        state["fingerprint"] = "not-this-machine"
        redo = run_job_slice(job, state, 10 ** 7)
        assert redo["done"]
        assert canonical(redo["result"]) == canonical(run_job(job))

    def test_sliceable_gates(self):
        assert sliceable(Job("sma", "daxpy", 64))
        assert sliceable(Job("cluster", "daxpy", 32, nodes=2))
        assert not sliceable(Job("scalar", "daxpy", 64))
        assert not sliceable(Job("vector", "daxpy", 64))
        assert not sliceable(Job("sma-occupancy", "daxpy", 64))
        spec = SMAConfig(speculation=SpeculationConfig(accuracy=0.5))
        assert not sliceable(Job("sma", "daxpy", 64, sma_config=spec))
        off = SMAConfig(speculation=SpeculationConfig(mode="never"))
        assert sliceable(Job("sma", "daxpy", 64, sma_config=off))


def drive(coro):
    """Run one async scheduler scenario to completion."""
    return asyncio.run(asyncio.wait_for(coro, timeout=300))


class TestScheduler:
    def test_coalescing_and_store_hits(self, tmp_path):
        async def scenario():
            store = ContentStore(tmp_path / "store")
            sched = JobScheduler(store, workers=2)
            await sched.start()
            try:
                job = Job("sma", "daxpy", 64)
                k1, f1, s1 = sched.submit(job)
                k2, f2, s2 = sched.submit(job)
                assert (s1, s2) == ("queued", "coalesced")
                assert k1 == k2 and f1 is f2
                result = await f1
                # landed results are store hits, not new entries
                _k3, f3, s3 = sched.submit(job)
                assert s3 == "cached" and (await f3) == result
                return result, sched.stats
            finally:
                await sched.stop()

        result, stats = drive(scenario())
        assert canonical(result) == canonical(
            run_job(Job("sma", "daxpy", 64))
        )
        assert stats.executed == 1
        assert stats.coalesced == 1
        assert stats.hits == 1

    def test_backpressure_rejects_when_full(self, tmp_path):
        async def scenario():
            store = ContentStore(tmp_path / "store")
            sched = JobScheduler(store, workers=1, max_backlog=2)
            await sched.start()
            try:
                futures = []
                for n in (32, 48, 64):
                    try:
                        _k, future, _s = sched.submit(
                            Job("sma", "daxpy", n)
                        )
                        futures.append(future)
                    except QueueFullError:
                        futures.append(None)
                assert futures[2] is None, "third distinct job rejected"
                assert sched.stats.rejected == 1
                # a duplicate of a queued job still coalesces at capacity
                _k, dup, status = sched.submit(Job("sma", "daxpy", 32))
                assert status == "coalesced"
                await asyncio.gather(futures[0], futures[1])
            finally:
                await sched.stop()

        drive(scenario())

    def test_draining_gate(self, tmp_path):
        async def scenario():
            store = ContentStore(tmp_path / "store")
            sched = JobScheduler(store, workers=1)
            await sched.start()
            try:
                _k, future, _s = sched.submit(Job("sma", "daxpy", 32))
                sched.begin_drain()
                with pytest.raises(SchedulerDraining):
                    sched.submit(Job("sma", "daxpy", 64))
                await sched.drained()
                assert future.done()
            finally:
                await sched.stop()

        drive(scenario())

    def test_worker_drain_migrates_checkpoint(self, tmp_path):
        """A drained worker requeues its sliced job with the checkpoint;
        the surviving worker finishes it bit-identically."""

        async def scenario():
            store = ContentStore(tmp_path / "store")
            sched = JobScheduler(store, workers=2, slice_cycles=40)
            await sched.start()
            try:
                job = Job("sma", "daxpy", 64)
                _k, future, _s = sched.submit(job)
                # let the first slice land, then retire a worker
                while True:
                    await asyncio.sleep(0.01)
                    entry = sched._inflight.get(job_key(job))
                    if entry is None or entry.state is not None:
                        break
                assert sched.drain_workers(1) == 1
                result = await future
                assert sched.progress()["workers"] == 1
                return result
            finally:
                await sched.stop()

        result = drive(scenario())
        assert canonical(result) == canonical(
            run_job(Job("sma", "daxpy", 64))
        )

    def test_last_worker_never_drains(self, tmp_path):
        async def scenario():
            store = ContentStore(tmp_path / "store")
            sched = JobScheduler(store, workers=1)
            await sched.start()
            try:
                assert sched.drain_workers(3) == 0
            finally:
                await sched.stop()

        drive(scenario())

    def test_terminal_failure_reported_and_resubmittable(self, tmp_path):
        async def scenario():
            store = ContentStore(tmp_path / "store")
            sched = JobScheduler(
                store, workers=1,
                policy=HarnessPolicy(retries=1, backoff=0.01),
            )
            await sched.start()
            try:
                # an unknown kernel fails fast and deterministically
                bad = Job("sma", "no_such_kernel", 64)
                key, future, _s = sched.submit(bad)
                with pytest.raises(Exception):
                    await future
                status = sched.lookup(key)
                assert status["status"] == "failed"
                assert sched.stats.retried == 1
                # resubmission clears the failure record and retries
                _k, fresh, s = sched.submit(bad)
                assert s == "queued"
                with pytest.raises(Exception):
                    await fresh
            finally:
                await sched.stop()

        drive(scenario())


def _client_run(url, jobs, landed=None, timeout=240):
    client = ServiceClient(url)
    return client.run(
        jobs,
        on_result=(lambda i, r: landed.append(i))
        if landed is not None else None,
        timeout=timeout,
    )


class TestServiceEndToEnd:
    """The acceptance scenario: concurrent clients against a live
    server, verified against the serial harness."""

    GRID = [
        Job("sma", "daxpy", 48, sma_config=SMAConfig(
            memory=MemoryConfig(latency=lat))) for lat in (2, 4, 8)
    ] + [
        Job("scalar", "daxpy", 48),
        Job("cluster", "daxpy", 32, nodes=2),
    ]

    def test_concurrent_clients_coalesce_and_match_serial(self, tmp_path):
        async def scenario():
            store = ContentStore(tmp_path / "store")
            server = SweepServer(store, workers=2, slice_cycles=10_000)
            host, port = await server.start()
            url = f"http://{host}:{port}"
            loop = asyncio.get_running_loop()
            try:
                # two clients, same duplicate-heavy grid, racing
                a = loop.run_in_executor(
                    None, _client_run, url, self.GRID
                )
                b = loop.run_in_executor(
                    None, _client_run, url, self.GRID
                )
                results_a, results_b = await asyncio.gather(a, b)
                progress = server.scheduler.progress()
                return results_a, results_b, progress
            finally:
                await server.stop()

        results_a, results_b, progress = drive(scenario())
        serial = run_jobs(self.GRID)
        for i in range(len(self.GRID)):
            assert canonical(results_a[i]) == canonical(serial[i])
            assert canonical(results_b[i]) == canonical(serial[i])
        sweep = progress["sweep"]
        # every duplicate coalesced or hit the store; nothing ran twice
        assert sweep["executed"] == len(self.GRID)
        assert sweep["coalesced"] + sweep["hits"] == len(self.GRID)
        assert progress["store"]["results"] == len(self.GRID)

    def test_http_surface(self, tmp_path):
        async def scenario():
            store = ContentStore(tmp_path / "store")
            server = SweepServer(store, workers=1)
            host, port = await server.start()
            url = f"http://{host}:{port}"
            loop = asyncio.get_running_loop()

            def poke():
                import urllib.error
                import urllib.request

                client = ServiceClient(url)
                assert client.healthz()
                job = Job("sma", "daxpy", 48)
                [status] = client.submit([job])
                assert status["status"] == "queued"
                key = status["key"]
                done = client.job_status(key, wait=60)
                assert done["status"] == "done"
                blob = client.get_blob(done["digest"])
                assert blob == done["result"]
                stats = client.stats()
                assert stats["sweep"]["executed"] == 1
                # unknown routes and keys 404 without wedging keep-alive
                try:
                    urllib.request.urlopen(url + "/v1/nope")
                    raise AssertionError("expected 404")
                except urllib.error.HTTPError as exc:
                    assert exc.code == 404
                assert client.job_status("f" * 64) is None
                # malformed spec -> 400 with a ProtocolError message
                try:
                    urllib.request.urlopen(urllib.request.Request(
                        url + "/v1/jobs",
                        data=json.dumps(
                            {"jobs": [{"machine": "abacus"}]}
                        ).encode(),
                        method="POST",
                    ))
                    raise AssertionError("expected 400")
                except urllib.error.HTTPError as exc:
                    assert exc.code == 400
                return done["result"]

            try:
                result = await loop.run_in_executor(None, poke)
            finally:
                await server.stop()
            return result

        result = drive(scenario())
        assert canonical(result) == canonical(run_job(Job("sma", "daxpy", 48)))

    def test_pool_worker_kill_recovers_without_reexecution(self, tmp_path):
        """SIGKILL a pool process mid-sweep: the scheduler respawns the
        pool, charges at most the victims, and already-flushed results
        are served from the store — never re-executed."""

        async def scenario():
            store = ContentStore(tmp_path / "store")
            server = SweepServer(
                store, workers=2, slice_cycles=2_000,
                policy=HarnessPolicy(retries=3, backoff=0.05),
            )
            host, port = await server.start()
            url = f"http://{host}:{port}"
            loop = asyncio.get_running_loop()
            jobs = [
                Job("sma", "hydro", 96, sma_config=SMAConfig(
                    memory=MemoryConfig(latency=lat)))
                for lat in (2, 3, 4, 6, 8, 12)
            ]
            try:
                run = loop.run_in_executor(
                    None, _client_run, url, jobs
                )
                # wait for real execution, then kill a pool process
                import os

                while not server.scheduler.worker_pids():
                    await asyncio.sleep(0.01)
                while server.scheduler.progress()["running"] == 0:
                    await asyncio.sleep(0.01)
                victim = server.scheduler.worker_pids()[0]
                os.kill(victim, signal.SIGKILL)
                results = await run
                return results, server.scheduler.progress()
            finally:
                await server.stop()

        results, progress = drive(scenario())
        jobs = [
            Job("sma", "hydro", 96, sma_config=SMAConfig(
                memory=MemoryConfig(latency=lat)))
            for lat in (2, 3, 4, 6, 8, 12)
        ]
        serial = run_jobs(jobs)
        for got, want in zip(results, serial):
            assert canonical(got) == canonical(want)
        sweep = progress["sweep"]
        assert sweep["respawns"] >= 1
        # the kill cost retries, not correctness; flushed results were
        # never re-executed (executed counts one landing per job)
        assert sweep["executed"] == len(jobs)
