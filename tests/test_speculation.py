"""Speculative AP mode (repro.core.speculation): safety and recovery.

The contract under test (ARCHITECTURE §20):

* accuracy 0 / mode "never" never builds an engine — runs are
  bit-identical to a machine with no speculation config at all (cycles,
  every stall bucket, lod accounting, the final memory image);
* a perfect predictor eliminates (nearly) all ``lod_*`` stall cycles on
  LOD-collapsed lowerings while outputs stay word-exact;
* mispredictions roll back completely: wrong-path queue slots, wrong-path
  memory traffic and AP register state all disappear, deterministically;
* speculation state round-trips through checkpoint/restore, and a
  snapshot taken while predictions are unresolved is refused.
"""

import hashlib
import json

import numpy as np
import pytest

from repro.config import (
    MemoryConfig,
    QueueConfig,
    SMAConfig,
    SpeculationConfig,
)
from repro.core import SMAMachine
from repro.errors import CheckpointError
from repro.harness.runner import _fit_memory, _load_inputs, run_on_sma
from repro.kernels import get_kernel, lower_sma

#: (kernel, lod_variant): every speculation-relevant lowering shape
CASES = (
    ("computed_gather", None),   # native EP-computed subscripts
    ("pic_gather", "addr"),      # rewritten gather indices (lod_eaq)
    ("tridiag", "branch"),       # execute-resolved back-edge (lod_ebq)
)

MEM = MemoryConfig(latency=16, bank_busy=8)


def _spec_cfg(speculation):
    return SMAConfig(memory=MEM, speculation=speculation)


def _run(name, variant, speculation, n=48, seed=7):
    kernel, inputs = get_kernel(name).instantiate(n, seed)
    lowered = lower_sma(kernel, lod_variant=variant)
    return kernel, run_on_sma(
        kernel, inputs, _spec_cfg(speculation), lowered=lowered
    )


def _digest(run):
    h = hashlib.sha256()
    for name in sorted(run.outputs):
        h.update(np.asarray(run.outputs[name], dtype=np.float64).tobytes())
    return h.hexdigest()


def _build(name, variant, speculation, n=32, seed=7):
    kernel, inputs = get_kernel(name).instantiate(n, seed)
    lowered = lower_sma(kernel, lod_variant=variant)
    cfg = SMAConfig(
        memory=_fit_memory(MEM, lowered.layout),
        queues=QueueConfig(),
        speculation=speculation,
    )
    machine = SMAMachine(
        lowered.access_program, lowered.execute_program, cfg
    )
    _load_inputs(machine, lowered.layout, kernel, inputs)
    return machine


class TestDisabledIsBitIdentical:
    @pytest.mark.parametrize("name,variant", CASES)
    @pytest.mark.parametrize(
        "off",
        [None,
         SpeculationConfig(accuracy=0.0),
         SpeculationConfig(mode="never")],
        ids=["no-config", "accuracy-0", "mode-never"],
    )
    def test_disabled_forms_match_plain(self, name, variant, off):
        _, plain = _run(name, variant, None)
        _, disabled = _run(name, variant, off)
        assert disabled.result.cycles == plain.result.cycles
        assert dict(disabled.result.ap.stall_cycles) == \
            dict(plain.result.ap.stall_cycles)
        assert disabled.result.lod_events == plain.result.lod_events
        assert disabled.result.speculation is None
        assert _digest(disabled) == _digest(plain)


class TestRecovery:
    @pytest.mark.parametrize("name,variant", CASES)
    def test_perfect_predictor_eliminates_lod(self, name, variant):
        _, plain = _run(name, variant, None)
        _, spec = _run(
            name, variant,
            SpeculationConfig(mode="perfect", max_depth=16),
        )
        assert plain.result.lod_stall_cycles > 0
        assert spec.result.lod_stall_cycles <= \
            0.1 * plain.result.lod_stall_cycles
        assert spec.result.cycles < plain.result.cycles
        assert _digest(spec) == _digest(plain)
        stats = spec.result.speculation
        assert stats["rollbacks"] == 0
        assert stats["predictions"] == stats["correct_predictions"]

    @pytest.mark.parametrize("name,variant", CASES)
    def test_cycles_monotone_in_accuracy(self, name, variant):
        plain_digest = None
        cycles = []
        for accuracy in (0.0, 0.25, 0.5, 0.75, 1.0):
            _, run = _run(
                name, variant,
                SpeculationConfig(accuracy=accuracy, max_depth=16),
            )
            if plain_digest is None:
                plain_digest = _digest(run)
            # wrong-path execution never changes values
            assert _digest(run) == plain_digest
            cycles.append(run.result.cycles)
        assert cycles == sorted(cycles, reverse=True)

    def test_rollbacks_actually_exercised(self):
        _, run = _run(
            "pic_gather", "addr",
            SpeculationConfig(accuracy=0.5, max_depth=16),
        )
        stats = run.result.speculation
        assert stats["rollbacks"] > 0
        assert stats["squashed_completions"] > 0
        assert run.result.ap.stall_cycles.get("misspeculation", 0) > 0

    def test_rollback_deterministic_across_reruns(self):
        spec = SpeculationConfig(accuracy=0.5, max_depth=8)
        _, first = _run("pic_gather", "addr", spec)
        _, again = _run("pic_gather", "addr", spec)
        assert again.result.cycles == first.result.cycles
        assert dict(again.result.ap.stall_cycles) == \
            dict(first.result.ap.stall_cycles)
        assert again.result.speculation == first.result.speculation
        assert _digest(again) == _digest(first)

    def test_predictor_seed_changes_coin_sequence(self):
        a = _run("pic_gather", "addr",
                 SpeculationConfig(accuracy=0.5, seed=0))[1]
        b = _run("pic_gather", "addr",
                 SpeculationConfig(accuracy=0.5, seed=99))[1]
        # different coin sequences, same (correct) outputs
        assert a.result.speculation != b.result.speculation
        assert _digest(a) == _digest(b)


class TestScheduling:
    def test_run_downgrades_fast_schedulers(self):
        machine = _build(
            "computed_gather", None, SpeculationConfig(mode="perfect")
        )
        want = _build(
            "computed_gather", None, SpeculationConfig(mode="perfect")
        ).run(scheduler="naive")
        got = machine.run(scheduler="codegen")  # silently downgraded
        assert got.cycles == want.cycles
        assert got.speculation == want.speculation


class TestCheckpoint:
    def test_snapshot_refused_mid_speculation(self):
        machine = _build(
            "computed_gather", None,
            SpeculationConfig(mode="perfect", max_depth=16),
        )
        for _ in range(200_000):
            machine.step_cycle()
            if machine._spec is not None and machine._spec.in_flight():
                break
        else:
            raise AssertionError("speculation never went in flight")
        with pytest.raises(CheckpointError, match="mid-speculation"):
            machine.snapshot()

    def test_roundtrip_between_speculations(self):
        spec = SpeculationConfig(accuracy=0.5, max_depth=4)
        straight = _build("computed_gather", None, spec)
        want = straight.run()

        source = _build("computed_gather", None, spec)
        cut = 0
        for _ in range(200_000):
            source.step_cycle()
            cut += 1
            if (cut > 50 and source._spec is not None
                    and source._spec.idle() and not source.done()):
                break
        snap = json.loads(json.dumps(source.snapshot()))

        resumed = _build("computed_gather", None, spec)
        resumed.restore(snap)
        got = resumed.run()
        assert got.cycles == want.cycles
        assert dict(got.ap.stall_cycles) == dict(want.ap.stall_cycles)
        assert got.speculation == want.speculation
        assert np.array_equal(resumed.memory._words,
                              straight.memory._words)

    def test_plain_snapshot_has_no_speculation_key(self):
        machine = _build("computed_gather", None, None)
        machine.step_cycles(20)
        assert "speculation" not in machine.snapshot()


class TestConfig:
    def test_enabled_property(self):
        assert not SpeculationConfig(accuracy=0.0).enabled
        assert not SpeculationConfig(mode="never").enabled
        assert SpeculationConfig(accuracy=0.5).enabled
        assert SpeculationConfig(mode="perfect", accuracy=0.0).enabled

    def test_lower_sma_rejects_unknown_variant(self):
        from repro.errors import LoweringError

        kernel, _ = get_kernel("daxpy").instantiate(16, 0)
        with pytest.raises(LoweringError, match="lod_variant"):
            lower_sma(kernel, lod_variant="sideways")

    def test_job_rejects_unknown_variant(self):
        from repro.harness.jobs import Job

        with pytest.raises(ValueError, match="lod_variant"):
            Job("sma", "daxpy", 16, lod_variant="sideways")
