"""Store pairing unit in isolation."""

from repro.config import MemoryConfig, SMAConfig
from repro.core.store_unit import StoreUnit
from repro.memory import BankedMemory, MainMemory
from repro.queues import QueueFile


def make():
    cfg = SMAConfig(memory=MemoryConfig(size=128, latency=2, bank_busy=1))
    queues = QueueFile(cfg)
    storage = MainMemory(128)
    memory = BankedMemory(storage, cfg.memory)
    return StoreUnit(queues, memory), queues, storage, memory


class TestPairing:
    def test_address_then_data(self):
        unit, queues, storage, memory = make()
        queues.store_addr.push((40, 0))
        assert not unit.tick(0)           # data missing
        assert unit.stats.data_wait_cycles == 1
        queues.store_data[0].push(5.5)
        assert unit.tick(1)
        assert storage.read(40) == 5.5

    def test_data_then_address(self):
        unit, queues, storage, memory = make()
        queues.store_data[0].push(1.0)
        assert not unit.tick(0)           # no address yet: nothing pending
        queues.store_addr.push((10, 0))
        assert unit.tick(1)
        assert storage.read(10) == 1.0

    def test_routes_by_data_queue_index(self):
        unit, queues, storage, memory = make()
        queues.store_data[0].push(100.0)
        queues.store_data[1].push(200.0)
        queues.store_addr.push((20, 1))
        queues.store_addr.push((21, 0))
        unit.tick(0)
        unit.tick(1)
        assert storage.read(20) == 200.0
        assert storage.read(21) == 100.0

    def test_one_store_per_cycle(self):
        unit, queues, storage, memory = make()
        for i in range(3):
            queues.store_addr.push((30 + i, 0))
            queues.store_data[0].push(float(i))
        assert unit.tick(0)
        assert unit.stats.stores_issued == 1
        assert len(queues.store_addr) == 2

    def test_memory_wait_counted(self):
        unit, queues, storage, memory = make()
        # saturate the port this cycle
        memory.try_issue(0, 0)
        queues.store_addr.push((1, 0))
        queues.store_data[0].push(9.0)
        assert not unit.tick(0)
        assert unit.stats.memory_wait_cycles == 1
        assert unit.tick(1)

    def test_pending(self):
        unit, queues, storage, memory = make()
        assert not unit.pending()
        queues.store_addr.push((5, 0))
        assert unit.pending()
