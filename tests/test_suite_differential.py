"""The core integration test: every suite kernel, on every machine,
word-for-word equal to the IR reference interpreter.

Parametrized over (kernel × machine-mode × two sizes); any semantic drift
anywhere in the stack — ISA semantics, queue ordering, stream engine,
store pairing, either code generator — lands here.
"""

import numpy as np
import pytest

from repro.kernels import all_kernels, kernel_names, run_reference
from repro.harness.runner import run_on_scalar, run_on_sma

SIZES = (17, 64)  # odd size shakes out off-by-one stream counts


def _golden(spec, n):
    kernel, inputs = spec.instantiate(n)
    return kernel, inputs, run_reference(kernel, inputs)


@pytest.mark.parametrize("n", SIZES)
@pytest.mark.parametrize("name", kernel_names())
def test_scalar_matches_reference(name, n):
    spec = next(s for s in all_kernels() if s.name == name)
    kernel, inputs, golden = _golden(spec, n)
    run = run_on_scalar(kernel, inputs)
    for arr, want in golden.items():
        np.testing.assert_array_equal(
            run.outputs[arr], want, err_msg=f"{name}/{arr}"
        )


@pytest.mark.parametrize("n", SIZES)
@pytest.mark.parametrize("name", kernel_names())
def test_sma_matches_reference(name, n):
    spec = next(s for s in all_kernels() if s.name == name)
    kernel, inputs, golden = _golden(spec, n)
    run = run_on_sma(kernel, inputs)
    for arr, want in golden.items():
        np.testing.assert_array_equal(
            run.outputs[arr], want, err_msg=f"{name}/{arr}"
        )


@pytest.mark.parametrize("name", kernel_names())
def test_sma_per_element_matches_reference(name):
    spec = next(s for s in all_kernels() if s.name == name)
    kernel, inputs, golden = _golden(spec, 33)
    run = run_on_sma(kernel, inputs, use_streams=False)
    for arr, want in golden.items():
        np.testing.assert_array_equal(
            run.outputs[arr], want, err_msg=f"{name}/{arr}"
        )


@pytest.mark.parametrize("name", kernel_names())
def test_sma_beats_or_matches_scalar(name):
    """Performance sanity: decoupling never *loses* to the baseline at the
    reference configuration (even the LOD-bound kernel stays ahead)."""
    spec = next(s for s in all_kernels() if s.name == name)
    kernel, inputs = spec.instantiate(64)
    sma = run_on_sma(kernel, inputs)
    scalar = run_on_scalar(kernel, inputs)
    assert sma.cycles <= scalar.cycles, (
        f"{name}: SMA {sma.cycles} vs scalar {scalar.cycles}"
    )


def test_streaming_kernels_get_large_speedups():
    """Shape check on the headline claim: streaming kernels exceed 4x at
    latency 8."""
    for name in ("hydro", "daxpy", "first_diff", "state_eqn"):
        spec = next(s for s in all_kernels() if s.name == name)
        kernel, inputs = spec.instantiate(128)
        sma = run_on_sma(kernel, inputs)
        scalar = run_on_scalar(kernel, inputs)
        assert scalar.cycles / sma.cycles > 4.0, name


def test_deterministic_across_runs():
    spec = next(s for s in all_kernels() if s.name == "hydro")
    kernel, inputs = spec.instantiate(32)
    a = run_on_sma(kernel, inputs)
    b = run_on_sma(kernel, inputs)
    assert a.cycles == b.cycles
    for arr in a.outputs:
        np.testing.assert_array_equal(a.outputs[arr], b.outputs[arr])
