"""Timeline recorder: per-cycle reconstruction and rendering."""

from repro.config import SMAConfig
from repro.core import SMAMachine
from repro.isa import assemble
from repro.trace import TimelineRecorder


def run_recorded(ap_src, ep_src, **kwargs):
    m = SMAMachine(assemble(ap_src), assemble(ep_src), SMAConfig())
    recorder = TimelineRecorder(**kwargs)
    m.load_array(50, [1.0] * 8)
    m.run(observer=recorder)
    return m, recorder


AP = "streamld lq0, #50, #1, #8\nstreamst sdq0, #80, #1, #8\nhalt"
EP = "mov x1, #8\nt: add sdq0, lq0, #1.0\ndecbnz x1, t\nhalt"


class TestRecording:
    def test_records_every_cycle(self):
        m, rec = run_recorded(AP, EP)
        assert len(rec.records) == m.cycle
        assert [r.cycle for r in rec.records] == list(range(m.cycle))

    def test_first_cycle_shows_first_instructions(self):
        _, rec = run_recorded(AP, EP)
        assert rec.records[0].ap_event.startswith("streamld")
        assert rec.records[0].ep_event.startswith("mov")

    def test_ap_halts_early_and_shows_hash(self):
        _, rec = run_recorded(AP, EP)
        halted = [r for r in rec.records if r.ap_event == "#"]
        active_ep = [r for r in halted if r.ep_event != "#"]
        assert halted and active_ep  # decoupling visible: AP done, EP busy

    def test_stall_causes_named(self):
        _, rec = run_recorded(AP, EP)
        assert any(r.ep_event == "~lq_empty" for r in rec.records)

    def test_engine_issue_counts(self):
        _, rec = run_recorded(AP, EP)
        assert sum(r.engine_issues for r in rec.records) == 16  # 8 ld + 8 st

    def test_max_cycles_cap(self):
        _, rec = run_recorded(AP, EP, max_cycles=5)
        assert len(rec.records) == 5


class TestRendering:
    def test_render_window(self):
        _, rec = run_recorded(AP, EP)
        text = rec.render(2, 5)
        lines = text.splitlines()
        assert lines[0].startswith("cycle")
        assert len(lines) == 2 + 4  # header + sep + 4 cycles

    def test_render_empty_range(self):
        _, rec = run_recorded(AP, EP)
        assert "no cycles" in rec.render(10_000, 10_001)

    def test_long_instructions_clipped(self):
        _, rec = run_recorded(AP, EP)
        text = rec.render(0, 3, column_width=10)
        for line in text.splitlines()[2:]:
            cells = line.split("|")
            assert len(cells[1].strip()) <= 10
