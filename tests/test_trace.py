"""Trace collectors: sampling, striding, bucketing."""

from repro.config import SMAConfig
from repro.core import SMAMachine
from repro.isa import assemble
from repro.trace import (
    CompositeObserver,
    ProgressSampler,
    QueueOccupancySampler,
    TimeSeries,
)


def run_with(observer):
    m = SMAMachine(
        assemble("""
            streamld lq0, #10, #1, #32
            streamst sdq0, #60, #1, #32
            halt
        """),
        assemble("""
            mov x1, #32
            t: add sdq0, lq0, #1.0
            decbnz x1, t
            halt
        """),
        SMAConfig(),
    )
    m.load_array(10, [1.0] * 32)
    m.run(observer=observer)
    return m


class TestTimeSeries:
    def test_bucketing_means(self):
        ts = TimeSeries("t", 1)
        for cyc in range(10):
            ts.append(cyc, float(cyc))
        pts = ts.bucketed(2)
        assert len(pts) == 2
        assert pts[0][1] == 2.0   # mean of 0..4
        assert pts[1][1] == 7.0   # mean of 5..9

    def test_empty(self):
        assert TimeSeries("t", 1).bucketed(4) == []

    def test_bucket_count_larger_than_points(self):
        ts = TimeSeries("t", 1)
        ts.append(0, 1.0)
        assert ts.bucketed(100) == [(0, 1.0)]


class TestSamplers:
    def test_queue_occupancy_sampler(self):
        sampler = QueueOccupancySampler()
        run_with(sampler)
        assert len(sampler.load.values) > 10
        assert max(sampler.load.values) > 0
        assert min(sampler.load.values) == 0.0

    def test_stride_downsamples(self):
        dense = QueueOccupancySampler(stride=1)
        sparse = QueueOccupancySampler(stride=4)
        run_with(dense)
        run_with(sparse)
        assert len(sparse.load.values) < len(dense.load.values)
        assert len(sparse.load.values) >= len(dense.load.values) // 4 - 1

    def test_progress_sampler_monotone_and_slipped(self):
        sampler = ProgressSampler()
        run_with(sampler)
        ap, ep = sampler.ap.values, sampler.ep.values
        assert all(a <= b for a, b in zip(ap, ap[1:]))
        assert all(a <= b for a, b in zip(ep, ep[1:]))
        # AP finishes its whole program while the EP is still mid-loop
        assert max(ap) == 3  # streamld, streamst, halt
        assert max(ep) > 30

    def test_composite(self):
        a = QueueOccupancySampler()
        b = ProgressSampler()
        run_with(CompositeObserver(a, b))
        assert a.load.values and b.ap.values
