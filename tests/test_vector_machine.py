"""Vector-machine baseline: ops, timing model, vectorizer legality."""

import numpy as np
import pytest

from repro.baseline.vector_machine import (
    SetAcc,
    StoreAcc,
    Strip,
    VArith,
    VectorMachine,
    VLoad,
    VReduce,
    VStore,
)
from repro.config import MemoryConfig
from repro.errors import SimulationError
from repro.isa import Op
from repro.kernels import all_kernels, get_kernel, run_reference
from repro.kernels.lower_vector import VectorizationError, lower_vector
from repro.harness.runner import run_on_vector


def mem_cfg(**kw):
    kw.setdefault("size", 1024)
    return MemoryConfig(**kw)


class TestMachineOps:
    def test_load_compute_store(self):
        program = [Strip((
            VLoad(0, 100, 1, 4),
            VArith(Op.MUL, 1, (0, 2.0)),
            VStore(1, 200, 1, 4),
        ), 4)]
        m = VectorMachine(program, mem_cfg())
        m.load_array(100, [1.0, 2.0, 3.0, 4.0])
        m.run()
        assert m.dump_array(200, 4).tolist() == [2.0, 4.0, 6.0, 8.0]

    def test_strided_and_negative(self):
        program = [Strip((
            VLoad(0, 106, -2, 4),   # 106, 104, 102, 100
            VStore(0, 300, 1, 4),
        ), 4)]
        m = VectorMachine(program, mem_cfg())
        m.load_array(100, np.arange(8, dtype=float))
        m.run()
        assert m.dump_array(300, 4).tolist() == [6.0, 4.0, 2.0, 0.0]

    def test_reduce_sequential_order(self):
        program = [
            SetAcc(0, 10.0),
            Strip((VLoad(0, 100, 1, 4), VReduce(Op.ADD, 0, 0)), 4),
            StoreAcc(0, 400),
        ]
        m = VectorMachine(program, mem_cfg())
        m.load_array(100, [1.0, 2.0, 3.0, 4.0])
        m.run()
        assert m.memory.read(400) == 20.0

    def test_unwritten_vreg_rejected(self):
        m = VectorMachine([Strip((VStore(3, 100, 1, 2),), 2)], mem_cfg())
        with pytest.raises(SimulationError, match="read before written"):
            m.run()

    def test_strip_length_bounds(self):
        m = VectorMachine(
            [Strip((VLoad(0, 0, 1, 100),), 100)], mem_cfg(), max_vl=64
        )
        with pytest.raises(SimulationError, match="strip length"):
            m.run()


class TestTiming:
    def test_unit_stride_strip_cost(self):
        cfg = mem_cfg(latency=8, bank_busy=4, num_banks=8)
        program = [Strip((VLoad(0, 0, 1, 64), VStore(0, 200, 1, 64)), 64)]
        m = VectorMachine(program, cfg)
        res = m.run()
        # 2 startups + latency + VL / rate(=1)
        assert res.cycles == 2 * m.STARTUP + 8 + 64

    def test_bank_collapse_slows_strided_strip(self):
        cfg = mem_cfg(latency=8, bank_busy=4, num_banks=8)
        unit = VectorMachine(
            [Strip((VLoad(0, 0, 1, 64),), 64)], cfg
        ).run().cycles
        collapsed = VectorMachine(
            [Strip((VLoad(0, 0, 8, 64),), 64)], mem_cfg(
                latency=8, bank_busy=4, num_banks=8, size=1024
            )
        ).run().cycles
        assert collapsed > 3 * unit

    def test_stats(self):
        program = [Strip((
            VLoad(0, 0, 1, 8), VArith(Op.ADD, 1, (0, 1.0)),
            VStore(1, 100, 1, 8),
        ), 8)]
        res = VectorMachine(program, mem_cfg()).run()
        assert res.strips == 1
        assert res.vector_ops == 3
        assert res.element_operations == 24
        assert res.memory_reads == 8 and res.memory_writes == 8


class TestVectorizer:
    VECTORIZABLE = ("daxpy", "hydro", "inner_product", "stencil2d",
                    "threshold", "integrate", "reverse_copy", "max_abs",
                    "conv4", "count_above", "clip", "hydro2d", "wave1d")
    REJECTED = {
        "tridiag": "loop-carried",
        "first_sum": "loop-carried",
        "linear_rec": "loop-carried",
        "pic_gather": "gather",
        "pic_scatter": "scatter|indirect store",
        "computed_gather": "data-dependent",
        "field_interp": "gather",
    }

    @pytest.mark.parametrize("name", VECTORIZABLE)
    def test_vectorizable_kernels_match_reference(self, name):
        kernel, inputs = get_kernel(name).instantiate(80)  # > one strip
        golden = run_reference(kernel, inputs)
        run = run_on_vector(kernel, inputs)
        for arr, want in golden.items():
            np.testing.assert_array_equal(run.outputs[arr], want,
                                          err_msg=f"{name}/{arr}")

    @pytest.mark.parametrize("name", sorted(REJECTED))
    def test_rejections_name_their_reason(self, name):
        import re

        kernel, inputs = get_kernel(name).instantiate(32)
        with pytest.raises(VectorizationError) as excinfo:
            lower_vector(kernel)
        assert re.search(self.REJECTED[name], str(excinfo.value))

    def test_strip_mining_covers_odd_sizes(self):
        kernel, inputs = get_kernel("daxpy").instantiate(67)
        golden = run_reference(kernel, inputs)
        run = run_on_vector(kernel, inputs)
        np.testing.assert_array_equal(run.outputs["y"], golden["y"])

    def test_strip_count(self):
        kernel, _ = get_kernel("daxpy").instantiate(130)
        low = lower_vector(kernel, max_vl=64)
        strips = [op for op in low.program if isinstance(op, Strip)]
        assert [s.length for s in strips] == [64, 64, 2]

    def test_vector_wins_streaming_loses_recurrences(self):
        """The R-T6 story at unit-test scale."""
        from repro.harness.runner import run_on_sma

        kernel, inputs = get_kernel("daxpy").instantiate(128)
        assert run_on_vector(kernel, inputs).cycles < \
            run_on_sma(kernel, inputs).cycles
        kernel, inputs = get_kernel("tridiag").instantiate(128)
        with pytest.raises(VectorizationError):
            lower_vector(kernel)
