"""Write-sequence verification layer."""

import numpy as np
import pytest

from repro.kernels import all_kernels, get_kernel
from repro.verify import (
    MemoryTracer,
    diff_write_sequences,
    reference_write_sequences,
    verify_kernel_writes,
)


class TestTracer:
    def test_records_reads_and_writes(self):
        from repro.core import SMAMachine
        from repro.isa import assemble

        m = SMAMachine(
            assemble("ldq lq0, #20, #0\nstaddr sdq0, #30, #0\nhalt"),
            assemble("add sdq0, lq0, #1.0\nhalt"),
        )
        m.memory.write(20, 2.5)
        tracer = MemoryTracer().install(m)
        m.run()
        assert ("r", 20, 2.5) in tracer.events
        assert ("w", 30, 3.5) in tracer.events
        assert tracer.reads == 1 and tracer.writes == 1
        assert tracer.write_sequences() == {30: [3.5]}
        assert tracer.read_addresses() == {20}

    def test_bulk_staging_not_traced(self):
        from repro.memory import MainMemory

        mem = MainMemory(32)
        tracer = MemoryTracer()
        mem.observer = tracer
        mem.load_array(0, np.ones(8))
        mem.dump_array(0, 8)
        assert tracer.events == []


class TestDiff:
    def test_identical(self):
        assert diff_write_sequences({1: [2.0]}, {1: [2.0]}) == []

    def test_value_mismatch(self):
        mismatches = diff_write_sequences({1: [2.0]}, {1: [3.0]})
        assert len(mismatches) == 1
        assert "addr 1" in str(mismatches[0])

    def test_order_mismatch(self):
        assert diff_write_sequences({1: [2.0, 3.0]}, {1: [3.0, 2.0]})

    def test_missing_writes(self):
        assert diff_write_sequences({1: [2.0]}, {})
        assert diff_write_sequences({}, {1: [2.0]})


class TestReferenceSequences:
    def test_in_place_kernel_records_every_write(self):
        kernel, inputs = get_kernel("first_sum").instantiate(8)
        from repro.kernels import lower_sma

        layout = lower_sma(kernel).layout
        sequences = reference_write_sequences(kernel, inputs, layout)
        # one write per loop iteration, each to a distinct address
        assert len(sequences) == 8
        assert all(len(seq) == 1 for seq in sequences.values())

    def test_reduction_records_single_final_store(self):
        kernel, inputs = get_kernel("inner_product").instantiate(8)
        from repro.kernels import lower_sma

        layout = lower_sma(kernel).layout
        sequences = reference_write_sequences(kernel, inputs, layout)
        out_addr = layout.base("out")
        assert list(sequences) == [out_addr]
        assert sequences[out_addr][0] == pytest.approx(
            float(np.dot(inputs["x"], inputs["z"]))
        )


@pytest.mark.parametrize("machine", ["sma", "sma-nostream", "scalar"])
@pytest.mark.parametrize(
    "name",
    ["daxpy", "tridiag", "pic_scatter", "stencil2d", "hydro2d",
     "computed_gather", "count_above", "matvec", "row_max"],
)
def test_write_sequences_match_sequential_semantics(name, machine):
    """Per-address write order on every machine equals the sequential
    order — a strictly stronger property than final-state equality."""
    kernel, inputs = get_kernel(name).instantiate(24)
    mismatches = verify_kernel_writes(kernel, inputs, machine)
    assert not mismatches, mismatches[:3]


def test_unknown_machine_rejected():
    kernel, inputs = get_kernel("daxpy").instantiate(8)
    with pytest.raises(ValueError):
        verify_kernel_writes(kernel, inputs, "vliw")
